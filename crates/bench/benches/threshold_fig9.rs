//! Figure 9 (bench-sized): I-τ query cost across the τ sweep μ−σ … μ+2σ,
//! SOTA vs KARL.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{AnyEvaluator, BoundMethod, IndexKind};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("miniboone", &cfg);
    let mut group = c.benchmark_group("fig9_threshold");
    for (label, k) in [("mu-1s", -1.0), ("mu", 0.0), ("mu+2s", 2.0)] {
        let tau = (w.tau + k * w.sigma).max(w.tau * 0.1);
        for (mname, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
            let eval = AnyEvaluator::build(
                IndexKind::Kd,
                &w.points,
                &w.weights,
                w.kernel,
                method,
                80,
            );
            let queries = &w.queries;
            let mut qi = 0usize;
            group.bench_function(format!("{label}/{mname}"), |b| {
                b.iter(|| {
                    qi = (qi + 1) % queries.len();
                    black_box(eval.tkaq(queries.point(qi), tau))
                })
            });
        }
    }
    group.finish();
    c.final_summary();
}
