//! Ablation (Lemma 2): the O(d) aggregated linear-bound evaluation via the
//! precomputed node statistics versus the naive O(n·d) re-aggregation over
//! the node's points. The O(d) identity is what makes KARL's per-node cost
//! independent of the node size.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_geom::{dist2, norm2};
use karl_tree::KdTree;

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let tree = KdTree::build(w.points.clone(), &w.weights, usize::MAX >> 1);
    let node = tree.node(tree.root());
    let q = w.queries.point(0).to_vec();
    let qn = norm2(&q);
    let gamma = w.kernel.gamma();
    let (m, c0) = (-0.3, 0.9); // an arbitrary linear bound Lin_{m,c}

    let mut group = c.benchmark_group("ablation_fl");
    group.bench_function("aggregated_o_d", |b| {
        b.iter(|| {
            let s = node.stats.weighted_dist2_sum(black_box(&q), qn);
            black_box(m * gamma * s + c0 * node.stats.weight_sum)
        })
    });
    group.bench_function("naive_o_nd", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in node.start..node.end {
                acc += tree.weights()[i]
                    * (m * gamma * dist2(black_box(&q), tree.points().point(i)) + c0);
            }
            black_box(acc)
        })
    });
    group.finish();
    c.final_summary();
}
