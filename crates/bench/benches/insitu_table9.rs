//! Table IX (bench-sized): end-to-end in-situ cost (build one kd-tree,
//! probe levels, answer the stream) for SOTA vs KARL bounds.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{BoundMethod, OnlineTuner, Query};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("miniboone", &cfg);
    let tuner = OnlineTuner {
        sample_fraction: 0.1,
        leaf_capacity: 16,
    };
    let mut group = c.benchmark_group("table9_insitu");
    group.sample_size(10);
    for (name, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(tuner.run(
                    &w.points,
                    &w.weights,
                    w.kernel,
                    method,
                    &w.queries,
                    Query::Tkaq { tau: w.tau },
                ))
            })
        });
    }
    group.finish();
    c.final_summary();
}
