//! Node-bound throughput: how many per-node `[LB, UB]` evaluations per
//! second each engine sustains. This isolates the tentpole win of the
//! frozen SoA index — the refinement loop's hot operation — from query
//! termination effects: every node of the tree is bounded for every
//! query, pointer path (`node_bounds` over the node arena) vs frozen path
//! (`node_bounds_frozen` over the flat buffers through the fused
//! kernels).
//!
//! A second section isolates the envelope construction itself: real
//! `(lo, hi, x̄)` intervals are harvested from the workload, then swept
//! three ways — direct [`envelope_parts`] calls (which since PR 4 share
//! the endpoint curve evaluations between the range, the chord and the
//! tangent), a cold [`EnvelopeCache`] (every key misses and inserts), and
//! a warm one (every key hits). The warm rate is the ceiling for
//! duplicate-heavy query streams; single-shot streams pay the cold rate.
//!
//! Emits JSON when `KARL_BENCH_JSON=<path>` is set (merged into
//! `BENCH_PR4.json` by `scripts/bench_json.sh`). Sizing overrides:
//! `KARL_BENCH_N` (points), `KARL_BENCH_BOUND_QUERIES` (queries).

use std::time::Instant;

use karl_core::{
    envelope_parts, node_bounds, node_bounds_frozen, node_interval_frozen, BoundMethod,
    EnvelopeCache, Evaluator, Kernel, QueryContext,
};
use karl_geom::{norm2, Ball, PointSet, Rect};
use karl_kde::scotts_gamma;
use karl_testkit::bench::black_box;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_tree::{NodeShape, Tree};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of repetitions per measurement (`KARL_BENCH_REPS` override). On a
/// shared host the best-of filter is what rejects scheduler noise, so
/// recorded runs should use more reps than the CI smoke's default.
fn reps() -> usize {
    env_usize("KARL_BENCH_REPS", 5)
}

fn synthetic(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 4 {
            0 => data.extend((0..d).map(|_| -1.0 + rng.random_range(-0.3..0.3))),
            1 | 2 => data.extend((0..d).map(|_| 1.0 + rng.random_range(-0.3..0.3))),
            _ => data.extend((0..d).map(|_| rng.random_range(-2.5..2.5))),
        }
    }
    PointSet::new(d, data)
}

/// Best-of-[`reps`] wall clock of `f`, converted to bound evaluations/sec.
fn measure<F: FnMut()>(evals: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps() {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    evals as f64 / best.max(1e-12)
}

struct Row {
    family: &'static str,
    method: BoundMethod,
    pointer_bounds_per_s: f64,
    frozen_bounds_per_s: f64,
}

fn bench_family<S: NodeShape>(
    family: &'static str,
    eval_karl: &Evaluator<S>,
    queries: &PointSet,
    rows: &mut Vec<Row>,
) {
    let tree: &Tree<S> = eval_karl
        .pos_tree()
        .expect("Type-I workload has a pos tree");
    let frozen = eval_karl
        .pos_frozen()
        .expect("frozen index is always built");
    let nodes = tree.num_nodes();
    let total = nodes * queries.len();
    let kernel = *eval_karl.kernel();

    for method in [BoundMethod::Sota, BoundMethod::Karl] {
        let pointer = measure(total, || {
            for q in queries.iter() {
                let qn = norm2(q);
                for (_, node) in tree.iter_nodes() {
                    black_box(node_bounds(
                        method,
                        &kernel,
                        &node.shape,
                        &node.stats,
                        q,
                        qn,
                    ));
                }
            }
        });
        let froz = measure(total, || {
            for q in queries.iter() {
                let ctx = QueryContext::new(&kernel, method, q);
                for id in 0..nodes as u32 {
                    black_box(node_bounds_frozen(&ctx, frozen, id));
                }
            }
        });
        rows.push(Row {
            family,
            method,
            pointer_bounds_per_s: pointer,
            frozen_bounds_per_s: froz,
        });
    }
}

/// Harvests the KARL envelope inputs `(lo, hi, x̄)` the refinement loop
/// would actually see: every positive-weight node of the kd tree against
/// the query stream, capped at `cap` records.
fn harvest_envelope_keys(
    eval: &Evaluator<Rect>,
    queries: &PointSet,
    cap: usize,
) -> Vec<(f64, f64, f64)> {
    let frozen = eval.pos_frozen().expect("frozen index is always built");
    let nodes = eval.pos_tree().expect("pos tree").num_nodes();
    let kernel = *eval.kernel();
    let mut keys = Vec::with_capacity(cap);
    'harvest: for q in queries.iter() {
        let ctx = QueryContext::new(&kernel, BoundMethod::Karl, q);
        for id in 0..nodes as u32 {
            let iv = node_interval_frozen(&ctx, frozen, id);
            if iv.w > 0.0 {
                keys.push((iv.lo, iv.hi, iv.x_agg / iv.w));
                if keys.len() >= cap {
                    break 'harvest;
                }
            }
        }
    }
    keys
}

struct EnvelopeMicro {
    keys: usize,
    distinct: usize,
    uncached_per_s: f64,
    cold_per_s: f64,
    warm_per_s: f64,
}

fn bench_envelope_micro(eval: &Evaluator<Rect>, queries: &PointSet) -> EnvelopeMicro {
    // Stay under 3/4 of the cache's maximum table so the cold pass is a
    // pure miss+insert sweep with no clear-in-place events.
    let keys = harvest_envelope_keys(eval, queries, 16_384);
    let curve = eval.kernel().curve();
    let m = keys.len();

    let uncached_per_s = measure(m, || {
        for &(lo, hi, xb) in &keys {
            black_box(envelope_parts(curve, lo, hi, xb));
        }
    });
    let cold_per_s = measure(m, || {
        let mut cache = EnvelopeCache::new();
        for &(lo, hi, xb) in &keys {
            black_box(cache.get_or_build(curve, lo, hi, xb));
        }
    });
    let mut warm = EnvelopeCache::new();
    for &(lo, hi, xb) in &keys {
        warm.get_or_build(curve, lo, hi, xb);
    }
    let distinct = warm.len();
    let warm_per_s = measure(m, || {
        for &(lo, hi, xb) in &keys {
            black_box(warm.get_or_build(curve, lo, hi, xb));
        }
    });
    EnvelopeMicro {
        keys: m,
        distinct,
        uncached_per_s,
        cold_per_s,
        warm_per_s,
    }
}

fn main() {
    let n = env_usize("KARL_BENCH_N", 100_000);
    let n_queries = env_usize("KARL_BENCH_BOUND_QUERIES", 64);
    let d = 8;
    let points = synthetic(n, d, 0xF0_2E);
    let queries = synthetic(n_queries, d, 0xF0_2F);
    let gamma = scotts_gamma(&points);
    let weights = vec![1.0 / n as f64; n];
    let kernel = Kernel::gaussian(gamma);

    let kd = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, 80);
    let ball = Evaluator::<Ball>::build(&points, &weights, kernel, BoundMethod::Karl, 80);
    let nodes = kd.pos_tree().unwrap().num_nodes();
    println!(
        "workload: {n} points x {d} dims, {nodes} nodes, {n_queries} queries, gamma {gamma:.4}"
    );

    let mut rows = Vec::new();
    bench_family("kd", &kd, &queries, &mut rows);
    bench_family("ball", &ball, &queries, &mut rows);

    println!(
        "{:<6} {:<6} {:>16} {:>16} {:>8}",
        "family", "method", "pointer bnd/s", "frozen bnd/s", "ratio"
    );
    for r in &rows {
        println!(
            "{:<6} {:<6} {:>16.0} {:>16.0} {:>7.2}x",
            r.family,
            format!("{:?}", r.method),
            r.pointer_bounds_per_s,
            r.frozen_bounds_per_s,
            r.frozen_bounds_per_s / r.pointer_bounds_per_s
        );
    }

    let micro = bench_envelope_micro(&kd, &queries);
    println!(
        "\nenvelope micro: {} keys ({} distinct), Gaussian curve",
        micro.keys, micro.distinct
    );
    println!(
        "{:<22} {:>16}",
        "path", "envelopes/s"
    );
    println!("{:<22} {:>16.0}", "direct (no cache)", micro.uncached_per_s);
    println!("{:<22} {:>16.0}", "cache cold (miss)", micro.cold_per_s);
    println!("{:<22} {:>16.0}", "cache warm (hit)", micro.warm_per_s);

    if let Ok(path) = std::env::var("KARL_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str("  \"bench\": \"frozen_bounds\",\n");
        json.push_str(&format!("  \"points\": {n},\n"));
        json.push_str(&format!("  \"dims\": {d},\n"));
        json.push_str(&format!("  \"queries\": {n_queries},\n"));
        json.push_str(&format!("  \"gamma\": {gamma},\n"));
        json.push_str(
            "  \"note\": \"Karl rows include the envelope construction, \
             which dominates the coordinate pass at d=8; since PR 4 the \
             builder shares the endpoint curve evaluations between range, \
             chord and tangent (6 exps -> 3 for the Gaussian), which is \
             what moves the Karl rows. envelope_micro isolates that \
             builder: cold-cache adds hash+insert overhead to every miss, \
             warm-cache is the all-hit ceiling and only materializes when \
             (curve, lo, hi, xbar) bit patterns repeat exactly, as in \
             duplicate-heavy query streams\",\n",
        );
        json.push_str(&format!(
            "  \"envelope_micro\": {{\"keys\": {}, \"distinct_keys\": {}, \
             \"uncached_envelopes_per_s\": {:.0}, \
             \"cache_cold_envelopes_per_s\": {:.0}, \
             \"cache_warm_envelopes_per_s\": {:.0}, \
             \"warm_over_uncached\": {:.3}}},\n",
            micro.keys,
            micro.distinct,
            micro.uncached_per_s,
            micro.cold_per_s,
            micro.warm_per_s,
            micro.warm_per_s / micro.uncached_per_s
        ));
        json.push_str("  \"results\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"family\": \"{}\", \"method\": \"{:?}\", \
                 \"pointer_bounds_per_s\": {:.0}, \"frozen_bounds_per_s\": {:.0}, \
                 \"frozen_over_pointer\": {:.3}}}{}\n",
                r.family,
                r.method,
                r.pointer_bounds_per_s,
                r.frozen_bounds_per_s,
                r.frozen_bounds_per_s / r.pointer_bounds_per_s,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write KARL_BENCH_JSON");
        println!("\nwrote {path}");
    }
}
