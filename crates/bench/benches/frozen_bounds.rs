//! Node-bound throughput: how many per-node `[LB, UB]` evaluations per
//! second each engine sustains. This isolates the tentpole win of the
//! frozen SoA index — the refinement loop's hot operation — from query
//! termination effects: every node of the tree is bounded for every
//! query, pointer path (`node_bounds` over the node arena) vs frozen path
//! (`node_bounds_frozen` over the flat buffers through the fused
//! kernels).
//!
//! Emits JSON when `KARL_BENCH_JSON=<path>` is set (merged into
//! `BENCH_PR3.json` by `scripts/bench_json.sh`). Sizing overrides:
//! `KARL_BENCH_N` (points), `KARL_BENCH_BOUND_QUERIES` (queries).

use std::time::Instant;

use karl_core::{node_bounds, node_bounds_frozen, BoundMethod, Evaluator, Kernel, QueryContext};
use karl_geom::{norm2, Ball, PointSet, Rect};
use karl_kde::scotts_gamma;
use karl_testkit::bench::black_box;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_tree::{NodeShape, Tree};

const REPS: usize = 3;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn synthetic(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 4 {
            0 => data.extend((0..d).map(|_| -1.0 + rng.random_range(-0.3..0.3))),
            1 | 2 => data.extend((0..d).map(|_| 1.0 + rng.random_range(-0.3..0.3))),
            _ => data.extend((0..d).map(|_| rng.random_range(-2.5..2.5))),
        }
    }
    PointSet::new(d, data)
}

/// Best-of-`REPS` wall clock of `f`, converted to bound evaluations/sec.
fn measure<F: FnMut()>(evals: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    evals as f64 / best.max(1e-12)
}

struct Row {
    family: &'static str,
    method: BoundMethod,
    pointer_bounds_per_s: f64,
    frozen_bounds_per_s: f64,
}

fn bench_family<S: NodeShape>(
    family: &'static str,
    eval_karl: &Evaluator<S>,
    queries: &PointSet,
    rows: &mut Vec<Row>,
) {
    let tree: &Tree<S> = eval_karl
        .pos_tree()
        .expect("Type-I workload has a pos tree");
    let frozen = eval_karl
        .pos_frozen()
        .expect("frozen index is always built");
    let nodes = tree.num_nodes();
    let total = nodes * queries.len();
    let kernel = *eval_karl.kernel();

    for method in [BoundMethod::Sota, BoundMethod::Karl] {
        let pointer = measure(total, || {
            for q in queries.iter() {
                let qn = norm2(q);
                for (_, node) in tree.iter_nodes() {
                    black_box(node_bounds(
                        method,
                        &kernel,
                        &node.shape,
                        &node.stats,
                        q,
                        qn,
                    ));
                }
            }
        });
        let froz = measure(total, || {
            for q in queries.iter() {
                let ctx = QueryContext::new(&kernel, method, q);
                for id in 0..nodes as u32 {
                    black_box(node_bounds_frozen(&ctx, frozen, id));
                }
            }
        });
        rows.push(Row {
            family,
            method,
            pointer_bounds_per_s: pointer,
            frozen_bounds_per_s: froz,
        });
    }
}

fn main() {
    let n = env_usize("KARL_BENCH_N", 100_000);
    let n_queries = env_usize("KARL_BENCH_BOUND_QUERIES", 64);
    let d = 8;
    let points = synthetic(n, d, 0xF0_2E);
    let queries = synthetic(n_queries, d, 0xF0_2F);
    let gamma = scotts_gamma(&points);
    let weights = vec![1.0 / n as f64; n];
    let kernel = Kernel::gaussian(gamma);

    let kd = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, 80);
    let ball = Evaluator::<Ball>::build(&points, &weights, kernel, BoundMethod::Karl, 80);
    let nodes = kd.pos_tree().unwrap().num_nodes();
    println!(
        "workload: {n} points x {d} dims, {nodes} nodes, {n_queries} queries, gamma {gamma:.4}"
    );

    let mut rows = Vec::new();
    bench_family("kd", &kd, &queries, &mut rows);
    bench_family("ball", &ball, &queries, &mut rows);

    println!(
        "{:<6} {:<6} {:>16} {:>16} {:>8}",
        "family", "method", "pointer bnd/s", "frozen bnd/s", "ratio"
    );
    for r in &rows {
        println!(
            "{:<6} {:<6} {:>16.0} {:>16.0} {:>7.2}x",
            r.family,
            format!("{:?}", r.method),
            r.pointer_bounds_per_s,
            r.frozen_bounds_per_s,
            r.frozen_bounds_per_s / r.pointer_bounds_per_s
        );
    }

    if let Ok(path) = std::env::var("KARL_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str("  \"bench\": \"frozen_bounds\",\n");
        json.push_str(&format!("  \"points\": {n},\n"));
        json.push_str(&format!("  \"dims\": {d},\n"));
        json.push_str(&format!("  \"queries\": {n_queries},\n"));
        json.push_str(&format!("  \"gamma\": {gamma},\n"));
        json.push_str(
            "  \"note\": \"Karl rows include the envelope construction \
             (transcendental curve evaluations), which dominates the \
             coordinate pass at d=8 — the fused-kernel gain shows mostly \
             on Sota rows and in end-to-end throughput_batch numbers\",\n",
        );
        json.push_str("  \"results\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"family\": \"{}\", \"method\": \"{:?}\", \
                 \"pointer_bounds_per_s\": {:.0}, \"frozen_bounds_per_s\": {:.0}, \
                 \"frozen_over_pointer\": {:.3}}}{}\n",
                r.family,
                r.method,
                r.pointer_bounds_per_s,
                r.frozen_bounds_per_s,
                r.frozen_bounds_per_s / r.pointer_bounds_per_s,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write KARL_BENCH_JSON");
        println!("\nwrote {path}");
    }
}
