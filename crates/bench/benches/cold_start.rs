//! Cold-start cost: rebuilding an evaluator from raw points vs loading
//! the persisted index file, at three dataset sizes.
//!
//! This is the number the persistence tier exists for — `karl index
//! build` is paid once, and every later process start replaces an
//! O(n log n) tree construction with a single bulk read plus checksum
//! walk (zero per-node work; the loaded evaluator answers bitwise
//! identically, which this bench re-verifies on a query probe each run).
//!
//! Wall clock is best-of-N like the other throughput benches. Set
//! `KARL_BENCH_JSON=<path>` for machine-readable output (this is how
//! `scripts/bench_json.sh` fills the cold_start section of
//! `BENCH_PR8.json`). Sizing override: `KARL_BENCH_COLD_N` sets the
//! largest size; the other two are N/16 and N/4.

use std::time::Instant;

use karl_core::{
    BoundMethod, Engine, Evaluator, IndexMeta, KdEvaluator, Kernel, Query, StorageCalibration,
    StorageProfile,
};
use karl_geom::PointSet;
use karl_kde::scotts_gamma;
use karl_testkit::bench::black_box;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};

/// Timing repetitions per mode; the fastest is reported.
const REPS: usize = 5;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Blobs plus background, same family as the throughput workloads.
fn synthetic(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 4 {
            0 => data.extend((0..d).map(|_| -1.0 + rng.random_range(-0.3..0.3))),
            1 | 2 => data.extend((0..d).map(|_| 1.0 + rng.random_range(-0.3..0.3))),
            _ => data.extend((0..d).map(|_| rng.random_range(-2.5..2.5))),
        }
    }
    PointSet::new(d, data)
}

/// Best-of-`REPS` wall clock of `f`, in seconds.
fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    n: usize,
    index_bytes: u64,
    build_s: f64,
    load_s: f64,
}

fn main() {
    let largest = env_usize("KARL_BENCH_COLD_N", 320_000).max(16);
    let sizes = [largest / 16, largest / 4, largest];
    let d = 8;
    let leaf = 80;
    let dir = std::env::temp_dir().join("karl_cold_start_bench");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    println!("cold_start: build vs load, {d} dims, leaf {leaf}, best of {REPS}");
    println!(
        "{:>9} {:>12} {:>10} {:>10} {:>8}",
        "points", "index_bytes", "build_ms", "load_ms", "speedup"
    );

    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let points = synthetic(n, d, 0xC01D + i as u64);
        let gamma = scotts_gamma(&points);
        let kernel = Kernel::gaussian(gamma);
        let weights = vec![1.0 / n as f64; n];

        let build_s = best_of(|| {
            black_box(Evaluator::<karl_geom::Rect>::build(
                &points,
                &weights,
                kernel,
                BoundMethod::Karl,
                leaf,
            ));
        });

        let eval: KdEvaluator = Evaluator::build(&points, &weights, kernel, BoundMethod::Karl, leaf);
        let meta = IndexMeta {
            kernel,
            method: BoundMethod::Karl,
            leaf_capacity: leaf as u32,
            profile: StorageProfile::Memory,
            calibration: StorageCalibration::canned(StorageProfile::Memory),
        };
        let path = dir.join(format!("cold_{n}.idx"));
        let index_bytes = eval.write_index_file(&path, &meta).expect("write index");

        let load_s = best_of(|| {
            black_box(KdEvaluator::from_index_file(&path).expect("load index"));
        });

        // Answer-equivalence probe: the loaded evaluator must be bitwise
        // identical to the fresh build on a live query.
        let (loaded, _) = KdEvaluator::from_index_file(&path).expect("load index");
        let probe: Vec<f64> = points.point(n / 2).to_vec();
        let q = Query::Ekaq { eps: 0.1 };
        assert_eq!(
            loaded.run_query_on(Engine::Frozen, &probe, q, None),
            eval.run_query_on(Engine::Frozen, &probe, q, None),
            "loaded index must answer bitwise identically"
        );

        println!(
            "{:>9} {:>12} {:>10.2} {:>10.2} {:>7.1}x",
            n,
            index_bytes,
            build_s * 1e3,
            load_s * 1e3,
            build_s / load_s
        );
        std::fs::remove_file(&path).ok();
        rows.push(Row {
            n,
            index_bytes,
            build_s,
            load_s,
        });
    }

    if let Ok(path) = std::env::var("KARL_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str("  \"bench\": \"cold_start\",\n");
        json.push_str(&format!("  \"dims\": {d},\n"));
        json.push_str(&format!("  \"leaf_capacity\": {leaf},\n"));
        json.push_str(&format!("  \"reps\": {REPS},\n"));
        json.push_str(
            "  \"note\": \"build = Evaluator::build from raw points (tree \
             construction + permutation + frozen flattening); load = \
             Evaluator::from_index_file (one bulk read + checksum walk + \
             zero-copy section views); loaded answers verified bitwise \
             identical each run\",\n",
        );
        json.push_str("  \"sizes\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"points\": {}, \"index_bytes\": {}, \"build_ms\": {:.3}, \
                 \"load_ms\": {:.3}, \"load_speedup_vs_build\": {:.1}}}{}\n",
                r.n,
                r.index_bytes,
                r.build_s * 1e3,
                r.load_s * 1e3,
                r.build_s / r.load_s,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write KARL_BENCH_JSON");
        eprintln!("wrote {path}");
    }
}
