//! Ablation (Figure 5a vs 5b): the tangent lower bound anchored at `x_max`
//! versus the optimal tangent at the weighted mean `x̄`. Measures both the
//! evaluation cost and (printed once) the tightness difference — the
//! optimal tangent is what turns Lemma 4 from "no worse" into "much
//! better".

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{Curve, Kernel};
use karl_geom::{norm2, BoundingShape};
use karl_tree::KdTree;

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let tree = KdTree::build(w.points.clone(), &w.weights, 64);
    let q = w.queries.point(0).to_vec();
    let qn = norm2(&q);
    // Walk down to the leaf whose volume contains the query: with a local
    // kernel that is the node whose bound actually decides queries (at the
    // root both tangents underflow to ~0 and the contrast is invisible).
    let mut node = tree.node(tree.root());
    while let Some((a, b)) = node.children {
        let (na, nb) = (tree.node(a), tree.node(b));
        node = if na.shape.mindist2(&q) <= nb.shape.mindist2(&q) { na } else { nb };
    }
    let gamma = w.kernel.gamma();
    let curve = Curve::NegExp;

    let x_lo = gamma * node.shape.mindist2(&q);
    let x_hi = gamma * node.shape.maxdist2(&q);
    let x_agg = Kernel::gaussian(gamma).x_aggregate(&node.stats, &q, qn);
    let wsum = node.stats.weight_sum;
    let exact = Kernel::gaussian(gamma).eval_range(
        tree.points(),
        tree.weights(),
        tree.norms2(),
        node.start,
        node.end,
        &q,
        qn,
    );

    let tangent_lb = |t: f64| -> f64 {
        let m = curve.deriv(t);
        let c0 = curve.value(t) - m * t;
        m * x_agg + c0 * wsum
    };
    let lb_at_mean = tangent_lb((x_agg / wsum).clamp(x_lo, x_hi));
    let lb_at_xmax = tangent_lb(x_hi);
    eprintln!(
        "ablation tangent LB (root node): at-mean {:.4e}, at-x_max {:.4e}, exact {:.4e} \
         (gap ratio {:.1}x)",
        lb_at_mean,
        lb_at_xmax,
        exact,
        (exact - lb_at_xmax) / (exact - lb_at_mean).max(1e-300)
    );

    let mut group = c.benchmark_group("ablation_tangent");
    group.bench_function("tangent_at_mean", |b| {
        b.iter(|| black_box(tangent_lb((x_agg / wsum).clamp(x_lo, x_hi))))
    });
    group.bench_function("tangent_at_xmax", |b| b.iter(|| black_box(tangent_lb(x_hi))));
    group.finish();
    c.final_summary();
}
