//! SIMD backend throughput: what the runtime-dispatched vector kernels
//! buy over the forced-scalar path, measured as same-run controls — the
//! *same process* flips `set_backend` between timed sections, so both
//! rows see identical trees, buffers, cache state and host noise.
//!
//! Two sections mirror the two hot loops the dispatcher feeds:
//!
//! * **bound_kernels** — per-node `[LB, UB]` evaluations/s through
//!   `node_bounds_frozen` (the refinement loop's hot operation), kd and
//!   ball families, SOTA and KARL methods;
//! * **leaf_aggregates** — exact weighted kernel sums/s through
//!   `Scan::aggregate` (the leaf-scan shape: one dist²/dot per point,
//!   4-wide blocked accumulators), plus raw `dist2`/`dot` primitive
//!   sweeps.
//!
//! Every section first asserts the two backends agree **bitwise** on a
//! probe value — the determinism contract, re-checked in the same run
//! the speedup is claimed from.
//!
//! Emits JSON when `KARL_BENCH_JSON=<path>` is set (merged into
//! `BENCH_PR9.json` by `scripts/bench_json.sh`), recording the detected
//! ISA next to every ratio. Sizing overrides: `KARL_BENCH_N` (points),
//! `KARL_BENCH_BOUND_QUERIES` (bound-kernel queries).

use std::time::Instant;

use karl_core::{node_bounds_frozen, BoundMethod, Evaluator, Kernel, QueryContext, Scan};
use karl_geom::{backend_name, dist2, dot, set_backend, Ball, PointSet, Rect, SimdChoice};
use karl_kde::scotts_gamma;
use karl_testkit::bench::black_box;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_tree::NodeShape;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn reps() -> usize {
    env_usize("KARL_BENCH_REPS", 5)
}

fn synthetic(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 4 {
            0 => data.extend((0..d).map(|_| -1.0 + rng.random_range(-0.3..0.3))),
            1 | 2 => data.extend((0..d).map(|_| 1.0 + rng.random_range(-0.3..0.3))),
            _ => data.extend((0..d).map(|_| rng.random_range(-2.5..2.5))),
        }
    }
    PointSet::new(d, data)
}

/// Best-of-[`reps`] wall clock of `f`, converted to operations/sec.
fn measure<F: FnMut()>(ops: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps() {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    ops as f64 / best.max(1e-12)
}

/// One scalar-vs-dispatched row. The scalar and dispatched measurements
/// run back to back under the corresponding forced backend, and `probe`
/// values from both backends must agree bitwise before timing starts.
struct Row {
    section: &'static str,
    label: String,
    dims: usize,
    scalar_per_s: f64,
    dispatched_per_s: f64,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.dispatched_per_s / self.scalar_per_s
    }
}

/// Times `f` under the forced-scalar backend, then under the dispatched
/// one, returning `(scalar_per_s, dispatched_per_s)`. `probe` is invoked
/// once under each backend and its bits must match — the same-run
/// determinism control.
fn scalar_vs_dispatched<F: FnMut(), P: FnMut() -> f64>(
    ops: usize,
    mut probe: P,
    mut f: F,
) -> (f64, f64) {
    set_backend(SimdChoice::Scalar);
    let probe_scalar = probe();
    let scalar = measure(ops, &mut f);
    set_backend(SimdChoice::Auto);
    let probe_dispatched = probe();
    assert_eq!(
        probe_scalar.to_bits(),
        probe_dispatched.to_bits(),
        "determinism contract violated: scalar {probe_scalar:?} vs {} {probe_dispatched:?}",
        backend_name()
    );
    let dispatched = measure(ops, &mut f);
    (scalar, dispatched)
}

fn bench_bounds<S: NodeShape>(
    family: &'static str,
    eval: &Evaluator<S>,
    queries: &PointSet,
    rows: &mut Vec<Row>,
) {
    let frozen = eval.pos_frozen().expect("frozen index is always built");
    let nodes = eval.pos_tree().expect("pos tree").num_nodes();
    let total = nodes * queries.len();
    let kernel = *eval.kernel();
    let d = queries.dims();
    for method in [BoundMethod::Sota, BoundMethod::Karl] {
        let q0 = queries.point(0);
        let (scalar, dispatched) = scalar_vs_dispatched(
            total,
            || {
                let ctx = QueryContext::new(&kernel, method, q0);
                let b = node_bounds_frozen(&ctx, frozen, 0);
                b.lb + b.ub
            },
            || {
                for q in queries.iter() {
                    let ctx = QueryContext::new(&kernel, method, q);
                    for id in 0..nodes as u32 {
                        black_box(node_bounds_frozen(&ctx, frozen, id));
                    }
                }
            },
        );
        rows.push(Row {
            section: "bound_kernels",
            label: format!("{family}/{method:?}"),
            dims: d,
            scalar_per_s: scalar,
            dispatched_per_s: dispatched,
        });
    }
}

fn bench_dims(n: usize, n_queries: usize, d: usize, rows: &mut Vec<Row>) {
    let points = synthetic(n, d, 0xF0_2E);
    let queries = synthetic(n_queries, d, 0xF0_2F);
    let gamma = scotts_gamma(&points);
    let weights = vec![1.0 / n as f64; n];
    let kernel = Kernel::gaussian(gamma);
    println!("\nworkload: {n} points x {d} dims, {n_queries} queries, gamma {gamma:.4}");

    // Trees are built once, under the dispatched backend; the build is
    // backend-independent by contract, so both timed rows share them.
    let kd = Evaluator::<Rect>::build(&points, &weights, kernel, BoundMethod::Karl, 80);
    let ball = Evaluator::<Ball>::build(&points, &weights, kernel, BoundMethod::Karl, 80);
    bench_bounds("kd", &kd, &queries, rows);
    bench_bounds("ball", &ball, &queries, rows);

    // Leaf-aggregate shape: one kernel evaluation (dist² or dot) per
    // point, accumulated 4-wide — `Scan::aggregate` is exactly the leaf
    // scan the tree engines run below the frontier.
    for (label, k) in [
        ("scan/gaussian", Kernel::gaussian(gamma)),
        ("scan/polynomial", Kernel::polynomial(0.3, 0.2, 2)),
    ] {
        let scan = Scan::new(points.clone(), weights.clone(), k);
        let q0 = queries.point(0).to_vec();
        let (scalar, dispatched) = scalar_vs_dispatched(
            n * n_queries,
            || scan.aggregate(&q0),
            || {
                for q in queries.iter() {
                    black_box(scan.aggregate(q));
                }
            },
        );
        rows.push(Row {
            section: "leaf_aggregates",
            label: label.to_string(),
            dims: d,
            scalar_per_s: scalar,
            dispatched_per_s: dispatched,
        });
    }

    // Raw primitive sweeps: the dispatcher's floor (no transcendental to
    // hide behind, pure coordinate arithmetic).
    for (label, prim) in [
        ("primitive/dist2", dist2 as fn(&[f64], &[f64]) -> f64),
        ("primitive/dot", dot as fn(&[f64], &[f64]) -> f64),
    ] {
        let q0 = queries.point(0).to_vec();
        let (scalar, dispatched) = scalar_vs_dispatched(
            n * n_queries,
            || prim(&q0, points.point(0)),
            || {
                for q in queries.iter() {
                    for i in 0..points.len() {
                        black_box(prim(q, points.point(i)));
                    }
                }
            },
        );
        rows.push(Row {
            section: "leaf_aggregates",
            label: label.to_string(),
            dims: d,
            scalar_per_s: scalar,
            dispatched_per_s: dispatched,
        });
    }
}

fn main() {
    let n = env_usize("KARL_BENCH_N", 100_000);
    let n_queries = env_usize("KARL_BENCH_BOUND_QUERIES", 64);
    // The ratio is a function of per-call work: at d=8 the non-inlinable
    // `#[target_feature]` call (+ vzeroupper on exit) eats most of the
    // 256-bit win, at d=32 the vector loop amortizes it. Both windows are
    // reported; `KARL_BENCH_DIMS` pins a single one.
    let dims: Vec<usize> = match std::env::var("KARL_BENCH_DIMS") {
        Ok(v) => vec![v.parse().expect("KARL_BENCH_DIMS must be an integer")],
        Err(_) => vec![8, 32],
    };

    // Resolve and report the ISA the dispatched rows will run on.
    let isa = set_backend(SimdChoice::Auto).name();
    println!("dispatched isa: {isa}");
    if isa == "scalar" {
        println!("note: no vector ISA detected; dispatched rows are scalar controls");
    }

    let mut rows = Vec::new();
    for &d in &dims {
        bench_dims(n, n_queries, d, &mut rows);
    }

    println!(
        "\n{:<16} {:<18} {:>5} {:>16} {:>16} {:>8}",
        "section", "row", "dims", "scalar ops/s", "dispatched ops/s", "ratio"
    );
    for r in &rows {
        println!(
            "{:<16} {:<18} {:>5} {:>16.0} {:>16.0} {:>7.2}x",
            r.section,
            r.label,
            r.dims,
            r.scalar_per_s,
            r.dispatched_per_s,
            r.ratio()
        );
    }

    if let Ok(path) = std::env::var("KARL_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str("  \"bench\": \"simd_kernels\",\n");
        json.push_str(&format!("  \"isa\": \"{isa}\",\n"));
        json.push_str(&format!("  \"points\": {n},\n"));
        json.push_str(&format!("  \"queries\": {n_queries},\n"));
        json.push_str(
            "  \"note\": \"same-run controls: one process flips \
             set_backend between the scalar and dispatched timings, and \
             each row's probe value is asserted bitwise identical across \
             backends before timing. bound_kernels counts [LB,UB] node \
             evaluations/s through node_bounds_frozen; leaf_aggregates \
             counts exact weighted kernel sums/s (Scan::aggregate) and \
             raw dist2/dot primitive calls/s. Gaussian scan rows split \
             their time between the dist2 coordinate pass (vectorized) \
             and the exp call (not), so their ratio trails the raw \
             primitive ratio by Amdahl; d=8 rows pay the non-inlinable \
             target_feature call per primitive, d=32 rows amortize it\",\n",
        );
        json.push_str("  \"results\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"section\": \"{}\", \"row\": \"{}\", \"dims\": {}, \
                 \"isa\": \"{isa}\", \
                 \"scalar_per_s\": {:.0}, \"dispatched_per_s\": {:.0}, \
                 \"dispatched_over_scalar\": {:.3}}}{}\n",
                r.section,
                r.label,
                r.dims,
                r.scalar_per_s,
                r.dispatched_per_s,
                r.ratio(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write KARL_BENCH_JSON");
        println!("\nwrote {path}");
    }
}
