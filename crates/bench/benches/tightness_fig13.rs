//! Figure 13 (bench-sized): cost of evaluating the bound functions over a
//! whole tree frontier (the per-level aggregation the tightness metric
//! uses), SOTA vs KARL — and, printed once at startup, the measured
//! tightness ratio itself.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{node_bounds, BoundMethod, Evaluator};
use karl_geom::{norm2, Rect};

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("miniboone", &cfg);
    let eval = Evaluator::<Rect>::build(&w.points, &w.weights, w.kernel, BoundMethod::Karl, 80);
    let tree = eval.pos_tree().expect("type I has a positive tree");
    let q = w.queries.point(0).to_vec();
    let qn = norm2(&q);
    let level = eval.max_depth() / 2;
    let frontier = tree.frontier_at_depth(level);
    let truth = eval.exact(&q);

    // One-shot tightness report (the figure's actual metric).
    for (name, method) in [("SOTA", BoundMethod::Sota), ("KARL", BoundMethod::Karl)] {
        let (mut lb, mut ub) = (0.0, 0.0);
        for &id in &frontier {
            let n = tree.node(id);
            let b = node_bounds(method, &w.kernel, &n.shape, &n.stats, &q, qn);
            lb += b.lb;
            ub += b.ub;
        }
        eprintln!(
            "fig13 tightness @level {level}: {name} ErrLB={:.3e} ErrUB={:.3e}",
            (truth - lb).abs() / truth,
            (ub - truth).abs() / truth
        );
    }

    let mut group = c.benchmark_group("fig13_frontier_bounds");
    for (name, method) in [("sota", BoundMethod::Sota), ("karl", BoundMethod::Karl)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &id in &frontier {
                    let n = tree.node(id);
                    let bp = node_bounds(method, &w.kernel, &n.shape, &n.stats, &q, qn);
                    acc += bp.lb + bp.ub;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
    c.final_summary();
}
