//! Figure 6 (bench-sized): cost of running one traced TKAQ to termination,
//! SOTA vs KARL — the per-query work the figure's iteration counts imply.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{BoundMethod, Evaluator};
use karl_geom::Rect;

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let karl = Evaluator::<Rect>::build(&w.points, &w.weights, w.kernel, BoundMethod::Karl, 80);
    let sota = karl.clone().with_method(BoundMethod::Sota);
    let q = w.queries.point(0).to_vec();

    let (_, t_sota) = sota.trace_tkaq(&q, w.tau);
    let (_, t_karl) = karl.trace_tkaq(&q, w.tau);
    eprintln!(
        "fig6 trace lengths: SOTA {} iterations, KARL {} iterations",
        t_sota.len() - 1,
        t_karl.len() - 1
    );

    let mut group = c.benchmark_group("fig6_traced_query");
    group.bench_function("sota", |b| b.iter(|| black_box(sota.trace_tkaq(&q, w.tau))));
    group.bench_function("karl", |b| b.iter(|| black_box(karl.trace_tkaq(&q, w.tau))));
    group.finish();
    c.final_summary();
}
