//! Batch-engine throughput: sequential pointer-engine loop (baseline) vs
//! the default frozen engine, scratch reuse, and the `QueryBatch`
//! executor at 1/2/4/8 worker threads, over a synthetic 100 000-point
//! Type-I workload.
//!
//! Unlike the other bench targets this one measures whole-batch wall
//! clock (the quantity the batch engine optimizes), not per-call latency,
//! and can emit machine-readable JSON: set `KARL_BENCH_JSON=<path>` and
//! the results are written there (this is how `scripts/bench_json.sh`
//! produces `BENCH_PR6.json`). Sizing overrides: `KARL_BENCH_N` (points),
//! `KARL_BENCH_QUERIES` (queries), `KARL_BENCH_GRID` (side of the
//! clustered query grid in the dual-vs-single TKAQ comparison).

use std::time::Instant;

use karl_core::{
    BoundMethod, Coreset, Engine, Evaluator, KdEvaluator, Kernel, Query, QueryBatch, Scratch,
};
use karl_geom::PointSet;
use karl_kde::scotts_gamma;
use karl_testkit::bench::black_box;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};

/// Timing repetitions per mode; the fastest is reported (standard
/// best-of-N to shed scheduler noise).
const REPS: usize = 3;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Two Gaussian blobs plus uniform background, mirroring the registry's
/// Type-I densities: queries near a blob terminate in a handful of
/// refinements, background queries walk deeper — realistic skew for the
/// work-stealing cursor.
fn synthetic(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 4 {
            0 => data.extend((0..d).map(|_| -1.0 + rng.random_range(-0.3..0.3))),
            1 | 2 => data.extend((0..d).map(|_| 1.0 + rng.random_range(-0.3..0.3))),
            _ => data.extend((0..d).map(|_| rng.random_range(-2.5..2.5))),
        }
    }
    PointSet::new(d, data)
}

/// Regular 2-D lattice of queries spanning the clustered data's domain
/// (remaining dims pinned at a blob center) — the KDE level-set shape:
/// grid regions far from the blobs are decisively below τ, regions on a
/// blob decisively above, and only the boundary band straddles. Compact
/// query leaves in the decisive regions are what the dual traversal
/// decides wholesale.
fn clustered_grid(side: usize, d: usize) -> PointSet {
    let step = 4.8 / side.max(2).saturating_sub(1) as f64;
    let mut data = Vec::with_capacity(side * side * d);
    for i in 0..side {
        for j in 0..side {
            data.push(-2.4 + i as f64 * step);
            if d > 1 {
                data.push(-2.4 + j as f64 * step);
            }
            data.extend(std::iter::repeat_n(1.0, d.saturating_sub(2)));
        }
    }
    PointSet::new(d, data)
}

struct Measurement {
    mode: &'static str,
    threads: usize,
    queries_per_s: f64,
}

/// Best-of-`REPS` wall-clock of `f`, converted to queries/second.
fn measure<F: FnMut()>(n_queries: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    n_queries as f64 / best.max(1e-12)
}

fn run_workload(
    label: &str,
    eval: &KdEvaluator,
    queries: &PointSet,
    query: Query,
    out: &mut Vec<(String, Vec<Measurement>)>,
) {
    let mut results = Vec::new();

    // Pointer-engine baseline: the pre-freeze evaluation path, fresh
    // buffers each call. Every speedup below is relative to this.
    results.push(Measurement {
        mode: "sequential_pointer",
        threads: 1,
        queries_per_s: measure(queries.len(), || {
            for q in queries.iter() {
                black_box(eval.run_query_on(Engine::Pointer, q, query, None));
            }
        }),
    });

    // Default (frozen-engine) per-query API, fresh buffers each call —
    // exactly what a caller without the batch engine writes.
    results.push(Measurement {
        mode: "sequential",
        threads: 1,
        queries_per_s: measure(queries.len(), || {
            for q in queries.iter() {
                black_box(eval.run_query(q, query, None));
            }
        }),
    });

    // Scratch reuse alone (no threading): isolates the allocation-reuse
    // win, which is the whole story on single-core hosts.
    results.push(Measurement {
        mode: "sequential_scratch",
        threads: 1,
        queries_per_s: measure(queries.len(), || {
            let mut scratch = Scratch::new();
            for q in queries.iter() {
                black_box(eval.run_with_scratch(q, query, None, &mut scratch));
            }
        }),
    });

    for threads in [1usize, 2, 4, 8] {
        let spec = QueryBatch::new(queries, query).threads(threads);
        results.push(Measurement {
            mode: "batch",
            threads,
            queries_per_s: measure(queries.len(), || {
                black_box(spec.run(eval));
            }),
        });
    }

    let base = results[0].queries_per_s;
    println!("\n== throughput_batch/{label} ==");
    println!(
        "{:<20} {:>7} {:>12} {:>8}",
        "mode", "threads", "queries/s", "speedup"
    );
    for m in &results {
        println!(
            "{:<20} {:>7} {:>12.0} {:>7.2}x",
            m.mode,
            m.threads,
            m.queries_per_s,
            m.queries_per_s / base
        );
    }
    out.push((label.to_string(), results));
}

fn main() {
    let n = env_usize("KARL_BENCH_N", 100_000);
    let n_queries = env_usize("KARL_BENCH_QUERIES", 2_000);
    let d = 8;
    let points = synthetic(n, d, 0xBA7C4);
    let queries = synthetic(n_queries, d, 0xBA7C5);
    let gamma = scotts_gamma(&points);
    let weights = vec![1.0 / n as f64; n];
    let eval = Evaluator::build(
        &points,
        &weights,
        Kernel::gaussian(gamma),
        BoundMethod::Karl,
        80,
    );
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "workload: {n} points x {d} dims, {n_queries} queries, gamma {gamma:.4}, \
         available_parallelism {parallelism}"
    );

    let mut all: Vec<(String, Vec<Measurement>)> = Vec::new();
    run_workload("ekaq", &eval, &queries, Query::Ekaq { eps: 0.2 }, &mut all);
    // Threshold near the bulk of the density so TKAQ queries are not all
    // trivially decidable at the root.
    let tau = {
        let mut vals: Vec<f64> = queries
            .iter()
            .take(64)
            .map(|q| eval.ekaq(q, 0.05))
            .collect();
        vals.sort_by(f64::total_cmp);
        vals[vals.len() / 2]
    };
    run_workload("tkaq", &eval, &queries, Query::Tkaq { tau }, &mut all);

    // Dual-tree vs single-tree on a clustered grid of TKAQ queries —
    // the canonical KDE level-set workload: a 2-D heat-map grid over a
    // clustered density, thresholded between the background and the blob
    // cores. Dual-tree amortization is a *low-dimensional* phenomenon
    // (in high d, kd-node MBRs are so wide that every query node touches
    // most data leaves and the joint upper bound floors at the touching
    // leaves' summed weight — the dual-tree FGT literature benches at
    // d ≤ 3 for the same reason), so this section builds its own 2-D
    // evaluator; small data leaves keep the per-leaf weight floor low.
    // Node visits are the work metric the simultaneous descent cuts:
    // single = per-query refinement iterations summed over the batch,
    // dual = pair intervals scored plus the per-query fallback's
    // iterations. Wall clock is reported too, but on spatially coherent
    // batches the visit count is the machine-independent signal.
    let dual_d = 2;
    let dual_points = synthetic(n, dual_d, 0xBA7C6);
    // Fixed bandwidth, not Scott's rule: Scott's shrinks with n, and once
    // the kernel length scale drops to the query-leaf span the joint
    // intervals widen past usefulness — the level-set workload should
    // stress the traversal, not bandwidth selection.
    let dual_gamma = 4.0;
    let dual_weights = vec![1.0 / n as f64; n];
    let dual_eval: KdEvaluator = Evaluator::build(
        &dual_points,
        &dual_weights,
        Kernel::gaussian(dual_gamma),
        BoundMethod::Karl,
        16,
    );
    let side = env_usize("KARL_BENCH_GRID", 64);
    let gridq = clustered_grid(side, dual_d);
    // Level-set threshold at 1/8 of the peak blob density: decisively
    // above the background plateau and decisively below the blob cores,
    // so only the blob boundary band straddles. Probing the density at a
    // fixed point keeps τ independent of the grid resolution.
    let gtau = {
        let probe = vec![1.0f64; dual_d];
        dual_eval.ekaq(&probe, 0.05) / 8.0
    };
    let gq = Query::Tkaq { tau: gtau };
    let spec = QueryBatch::new(&gridq, gq).threads(1);
    let single_out = spec.run(&dual_eval);
    let dual_out = spec.run_dual(&dual_eval);
    let single_visits = single_out.total_iterations() as u64;
    let dual_visits = dual_out.dual_node_visits();
    let single_qps = measure(gridq.len(), || {
        black_box(spec.run(&dual_eval));
    });
    let dual_qps = measure(gridq.len(), || {
        black_box(spec.run_dual(&dual_eval));
    });
    println!(
        "\n== throughput_batch/dual_tkaq ({side}x{side} grid over {n} pts x {dual_d} dims, \
         tau {gtau:.5}) =="
    );
    println!(
        "single: {single_visits} node visits, {single_qps:.0} queries/s\n\
         dual:   {dual_visits} node visits ({} pairs scored, {} of {} queries wholesale), \
         {dual_qps:.0} queries/s",
        dual_out.dual_pairs(),
        dual_out.dual_wholesale(),
        gridq.len(),
    );

    // Coreset cascade vs the full tree on a skewed-τ level-set grid over
    // REDUNDANT data: the same blob+background density with every
    // coordinate quantized to a 0.05 sensor lattice, so each occupied
    // site carries a dozen duplicates (the shape of metered / quantized
    // feature data). Grid-snap cells at a sub-lattice pitch each capture
    // one site, the |w|-weighted centroid lands back on the site, and the
    // certificate comes out *measured* at eps_c ≈ 0 — the coreset is a
    // certified dedup an order of magnitude smaller than the data. Most
    // grid queries sit decisively above (blob cores) or below
    // (background) τ and terminate at coarse node resolution on either
    // tree; the queries straddling the τ level set must refine to leaf
    // scans, and there the tier pays compression-fold fewer kernel
    // evaluations — that is where the end-to-end speedup lives. The
    // control is the SAME evaluator and batch spec with the cascade flag
    // off, measured in the same process: the two rows differ only in the
    // tier.
    let cs_quant = 0.05;
    let cs_points = PointSet::new(
        dual_d,
        dual_points
            .iter()
            .flat_map(|p| p.iter().map(|v| (v / cs_quant).round() * cs_quant))
            .collect(),
    );
    let cs_eval: KdEvaluator = Evaluator::build(
        &cs_points,
        &dual_weights,
        Kernel::gaussian(dual_gamma),
        BoundMethod::Karl,
        16,
    );
    let cs_tau = {
        let probe = vec![1.0f64; dual_d];
        cs_eval.ekaq(&probe, 0.05) / 8.0
    };
    // Target ε at half of τ: the grid-snap cell pitch this implies
    // (ε / (L√d) ≈ 0.01) sits below the 0.05 lattice spacing, so every
    // cell holds a single site and the certificate measures ≈ 0.
    let cs_eps = cs_tau / 2.0;
    let coreset = Coreset::try_build(
        &cs_points,
        &dual_weights,
        Kernel::gaussian(dual_gamma),
        cs_eps,
    )
    .expect("gaussian coreset must build");
    let cascade_eval = cs_eval
        .clone()
        .with_coreset_tier(&coreset, 16)
        .expect("tier must attach");
    let cs_query = Query::Tkaq { tau: cs_tau };
    let control_spec = QueryBatch::new(&gridq, cs_query).threads(1);
    let cascade_spec = QueryBatch::new(&gridq, cs_query).threads(1).coreset(true);
    let cascade_out = cascade_spec.run(&cascade_eval);
    let decided = cascade_out.coreset_decided();
    let fell = cascade_out.coreset_fallthrough();
    let decided_frac = decided as f64 / gridq.len() as f64;
    let control_qps = measure(gridq.len(), || {
        black_box(control_spec.run(&cs_eval));
    });
    let cascade_qps = measure(gridq.len(), || {
        black_box(cascade_spec.run(&cascade_eval));
    });
    println!(
        "\n== throughput_batch/coreset_cascade ({side}x{side} grid over {n} pts quantized \
         to a {cs_quant} lattice, tau {cs_tau:.5}, coreset eps {cs_eps:.5}) =="
    );
    println!(
        "coreset: {} of {} points ({:.1}x compression), eps_c {:.3e}, margin {:.3e}, \
         tier footprint {} bytes",
        coreset.len(),
        n,
        n as f64 / coreset.len() as f64,
        coreset.eps_c(),
        coreset.margin(),
        cascade_eval.tier_footprint_bytes().unwrap_or(0),
    );
    println!(
        "control: {control_qps:.0} queries/s\n\
         cascade: {cascade_qps:.0} queries/s ({decided} of {} decided at tier 1 = {:.1}%, \
         {fell} fell through) -> {:.2}x",
        gridq.len(),
        100.0 * decided_frac,
        cascade_qps / control_qps,
    );

    if let Ok(path) = std::env::var("KARL_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str("  \"bench\": \"throughput_batch\",\n");
        json.push_str(&format!("  \"points\": {n},\n"));
        json.push_str(&format!("  \"dims\": {d},\n"));
        json.push_str(&format!("  \"queries\": {n_queries},\n"));
        json.push_str(&format!("  \"gamma\": {gamma},\n"));
        json.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
        json.push_str(
            "  \"note\": \"thread-count speedups are bounded above by \
             available_parallelism; on a 1-core host only the scratch-reuse \
             gain can materialize\",\n",
        );
        json.push_str("  \"workloads\": {\n");
        for (wi, (label, results)) in all.iter().enumerate() {
            let base = results[0].queries_per_s;
            json.push_str(&format!("    \"{label}\": [\n"));
            for (i, m) in results.iter().enumerate() {
                json.push_str(&format!(
                    "      {{\"mode\": \"{}\", \"threads\": {}, \"queries_per_s\": {:.1}, \
                     \"speedup_vs_sequential_pointer\": {:.3}}}{}\n",
                    m.mode,
                    m.threads,
                    m.queries_per_s,
                    m.queries_per_s / base,
                    if i + 1 < results.len() { "," } else { "" }
                ));
            }
            json.push_str(&format!(
                "    ]{}\n",
                if wi + 1 < all.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
        json.push_str("  \"dual_tkaq\": {\n");
        json.push_str(&format!("    \"points\": {n},\n"));
        json.push_str(&format!("    \"dims\": {dual_d},\n"));
        json.push_str("    \"data_leaf\": 16,\n");
        json.push_str(&format!("    \"gamma\": {dual_gamma},\n"));
        json.push_str(&format!("    \"grid_side\": {side},\n"));
        json.push_str(&format!("    \"queries\": {},\n", gridq.len()));
        json.push_str(&format!("    \"tau\": {gtau},\n"));
        json.push_str(&format!("    \"single_node_visits\": {single_visits},\n"));
        json.push_str(&format!("    \"dual_node_visits\": {dual_visits},\n"));
        json.push_str(&format!(
            "    \"dual_pairs_scored\": {},\n",
            dual_out.dual_pairs()
        ));
        json.push_str(&format!(
            "    \"dual_wholesale_decided\": {},\n",
            dual_out.dual_wholesale()
        ));
        json.push_str(&format!(
            "    \"single_queries_per_s\": {single_qps:.1},\n"
        ));
        json.push_str(&format!("    \"dual_queries_per_s\": {dual_qps:.1}\n"));
        json.push_str("  },\n");
        json.push_str("  \"coreset_cascade\": {\n");
        json.push_str(&format!("    \"points\": {n},\n"));
        json.push_str(&format!("    \"dims\": {dual_d},\n"));
        json.push_str(&format!("    \"quantized_lattice\": {cs_quant},\n"));
        json.push_str(&format!("    \"grid_side\": {side},\n"));
        json.push_str(&format!("    \"queries\": {},\n", gridq.len()));
        json.push_str(&format!("    \"tau\": {cs_tau},\n"));
        json.push_str(&format!("    \"coreset_target_eps\": {cs_eps},\n"));
        json.push_str(&format!("    \"coreset_points\": {},\n", coreset.len()));
        json.push_str(&format!(
            "    \"compression\": {:.2},\n",
            n as f64 / coreset.len() as f64
        ));
        json.push_str(&format!("    \"eps_c\": {:e},\n", coreset.eps_c()));
        json.push_str(&format!("    \"margin\": {:e},\n", coreset.margin()));
        json.push_str(&format!(
            "    \"tier_footprint_bytes\": {},\n",
            cascade_eval.tier_footprint_bytes().unwrap_or(0)
        ));
        json.push_str(&format!("    \"tier1_decided\": {decided},\n"));
        json.push_str(&format!("    \"fell_through\": {fell},\n"));
        json.push_str(&format!(
            "    \"tier1_decided_fraction\": {decided_frac:.4},\n"
        ));
        json.push_str(&format!(
            "    \"control_queries_per_s\": {control_qps:.1},\n"
        ));
        json.push_str(&format!(
            "    \"cascade_queries_per_s\": {cascade_qps:.1},\n"
        ));
        json.push_str(&format!(
            "    \"speedup_vs_control\": {:.3}\n",
            cascade_qps / control_qps
        ));
        json.push_str("  }\n}\n");
        std::fs::write(&path, json).expect("write KARL_BENCH_JSON");
        println!("\nwrote {path}");
    }
}
