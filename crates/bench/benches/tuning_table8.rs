//! Table VIII (bench-sized): cost of one offline tuning sweep (build +
//! probe every grid candidate), which is the paper's offline budget.

mod common;

use karl_testkit::bench::black_box;
use karl_bench::workloads::build_type1;
use karl_core::{BoundMethod, IndexKind, OfflineTuner, Query};
use karl_data::sample_queries;

fn main() {
    let mut c = common::criterion();
    let cfg = common::bench_config();
    let w = build_type1("home", &cfg);
    let sample = sample_queries(&w.points, 25, 0xFACE);
    let tuner = OfflineTuner {
        leaf_capacities: vec![20, 160],
        index_kinds: vec![IndexKind::Kd, IndexKind::Ball],
    };
    let mut group = c.benchmark_group("table8_offline_tuning");
    group.sample_size(10);
    group.bench_function("sweep_2x2", |b| {
        b.iter(|| {
            black_box(tuner.tune(
                &w.points,
                &w.weights,
                w.kernel,
                BoundMethod::Karl,
                &sample,
                Query::Tkaq { tau: w.tau },
            ))
        })
    });
    group.finish();
    c.final_summary();
}
