//! Shared setup for the Criterion benches: a laptop-instant configuration
//! (2 000-point datasets, 50 queries) and short measurement windows so the
//! whole `cargo bench --workspace` suite stays in CI territory. The
//! experiment *binaries* (`cargo run -p karl-bench --bin exp_*`) are the
//! full-fidelity versions of the same measurements.

use karl_testkit::bench::Criterion;
use karl_bench::Config;

/// The tiny benchmark configuration.
#[allow(dead_code)]
pub fn bench_config() -> Config {
    Config {
        scale: 1e-9, // clamps every dataset to the 2 000-point floor
        queries: 50,
        train_cap: 400,
    }
}

/// Criterion tuned for a fast suite.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .configure_from_args()
}
