//! Figure 1 (bench-sized): cost of one ε-approximate density evaluation on
//! the 2-d miniboone slice — the unit of work behind the paper's density
//! heat map.

mod common;

use karl_testkit::bench::black_box;
use karl_core::BoundMethod;
use karl_data::by_name;
use karl_geom::PointSet;
use karl_kde::Kde;

fn main() {
    let mut c = common::criterion();
    let ds = by_name("miniboone").unwrap().generate_n(2_000);
    let mut plane_data = Vec::with_capacity(ds.points.len() * 2);
    for p in ds.points.iter() {
        plane_data.push(p[0]);
        plane_data.push(p[1]);
    }
    let plane = PointSet::new(2, plane_data);
    let kde = Kde::with_gamma(plane.clone(), karl_kde::scotts_gamma(&plane));
    let eval = kde.evaluator(BoundMethod::Karl, 80);

    let mut group = c.benchmark_group("fig1_density");
    group.bench_function("ekaq_0.05", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t = (t + 0.37) % 1.0;
            black_box(eval.ekaq(&[t, 1.0 - t], 0.05))
        })
    });
    group.bench_function("exact", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t = (t + 0.37) % 1.0;
            black_box(kde.density_exact(&[t, 1.0 - t]))
        })
    });
    group.finish();
    c.final_summary();
}
