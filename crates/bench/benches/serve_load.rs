//! Serve-loop throughput and tail latency: NDJSON request scripts driven
//! through `karl_core::serve::Server` over an in-memory `Cursor`, so the
//! numbers isolate admission + micro-batch dispatch + response rendering
//! from transport cost.
//!
//! Two workloads:
//!
//!   * steady — a burst of eKAQ requests under a roomy queue, swept over
//!     1/2/4/8 worker threads: requests/second plus p50/p99
//!     admission-to-response latency from the server's own histogram;
//!   * overload — bursts larger than the admission queue with
//!     `batch_max > queue_cap` (no auto-flush), so every burst exercises
//!     the full degradation ladder: admit, shed past the watermark,
//!     reject at capacity. Offered-load requests/second plus the
//!     admit/shed/reject partition, which is deterministic and identical
//!     at every thread count.
//!
//! Set `KARL_BENCH_JSON=<path>` for machine-readable output (this is how
//! `scripts/bench_json.sh` folds the results into `BENCH_PR10.json`).
//! Sizing overrides: `KARL_BENCH_N` (points), `KARL_BENCH_SERVE_REQS`
//! (steady requests), `KARL_BENCH_SERVE_BURSTS` (overload bursts).

use std::io::Cursor;
use std::time::Instant;

use karl_core::{
    AnyEvaluator, BoundMethod, IndexKind, Kernel, ServeConfig, Server, StatsSnapshot,
};
use karl_geom::PointSet;
use karl_testkit::bench::black_box;
use karl_testkit::rng::{Rng, SeedableRng, StdRng};
use karl_testkit::serve_script::ScriptBuilder;

/// Timing repetitions per configuration; the fastest is reported.
const REPS: usize = 3;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Two Gaussian blobs plus uniform background (the registry's Type-I
/// shape), matching the other end-to-end benches.
fn synthetic(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        match i % 4 {
            0 => data.extend((0..d).map(|_| -1.0 + rng.random_range(-0.3..0.3))),
            1 | 2 => data.extend((0..d).map(|_| 1.0 + rng.random_range(-0.3..0.3))),
            _ => data.extend((0..d).map(|_| rng.random_range(-2.5..2.5))),
        }
    }
    PointSet::new(d, data)
}

struct RunOut {
    secs: f64,
    p50_us: u64,
    p99_us: u64,
    snap: StatsSnapshot,
}

/// One full server lifetime over `script`; the transcript goes to a
/// black-boxed buffer and the log to a sink, so only serving is timed.
fn run_once(eval: &AnyEvaluator, cfg: &ServeConfig, script: &str) -> RunOut {
    let mut server = Server::new(eval, cfg.clone()).expect("valid bench config");
    let mut out = Vec::with_capacity(script.len());
    let start = Instant::now();
    server
        .run(Cursor::new(script.as_bytes()), &mut out, std::io::sink())
        .expect("serve loop");
    let secs = start.elapsed().as_secs_f64();
    black_box(&out);
    let stats = server.stats();
    let threads = cfg.threads.unwrap_or(1) as u64;
    RunOut {
        secs,
        p50_us: stats.p50_us(),
        p99_us: stats.p99_us(),
        snap: stats.snapshot(threads),
    }
}

/// Best-of-`REPS`: wall clock from the fastest repetition, latency
/// quantiles and counters from that same run (counters are deterministic
/// across repetitions; only timing varies).
fn measure(eval: &AnyEvaluator, cfg: &ServeConfig, script: &str) -> RunOut {
    let mut best = run_once(eval, cfg, script);
    for _ in 1..REPS {
        let run = run_once(eval, cfg, script);
        assert_eq!(
            run.snap, best.snap,
            "serve counters must be deterministic across repetitions"
        );
        if run.secs < best.secs {
            best = run;
        }
    }
    best
}

fn main() {
    let n = env_usize("KARL_BENCH_N", 50_000);
    let n_reqs = env_usize("KARL_BENCH_SERVE_REQS", 2_000);
    let bursts = env_usize("KARL_BENCH_SERVE_BURSTS", 10);
    let d = 8;
    let points = synthetic(n, d, 0x5E4E1);
    let weights = vec![1.0 / n as f64; n];
    let gamma = 0.5;
    let eval = AnyEvaluator::build(
        IndexKind::Kd,
        &points,
        &weights,
        Kernel::gaussian(gamma),
        BoundMethod::Karl,
        80,
    );
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "workload: {n} points x {d} dims, {n_reqs} steady requests, gamma {gamma}, \
         available_parallelism {parallelism}"
    );

    // Steady state: auto-flush every 64 requests, queue never near full.
    let steady_script = {
        let mut s = ScriptBuilder::new();
        let mut rng = StdRng::seed_from_u64(0x5E4E2);
        s.ekaq_burst(n_reqs, d, 0.05, -2.5..2.5, &mut rng);
        s.shutdown();
        s.build()
    };
    println!("\n== serve_load/steady (batch_max 64, queue 1024) ==");
    println!(
        "{:>7} {:>12} {:>9} {:>9} {:>8}",
        "threads", "requests/s", "p50_us", "p99_us", "batches"
    );
    let mut steady = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let cfg = ServeConfig {
            threads: Some(threads),
            ..ServeConfig::default()
        };
        let run = measure(&eval, &cfg, &steady_script);
        assert_eq!(run.snap.admitted, n_reqs as u64, "steady run must admit all");
        assert_eq!(run.snap.rejected, 0);
        let rps = n_reqs as f64 / run.secs.max(1e-12);
        println!(
            "{threads:>7} {rps:>12.0} {:>9} {:>9} {:>8}",
            run.p50_us, run.p99_us, run.snap.batches
        );
        steady.push((threads, rps, run));
    }

    // Overload: bursts of 100 against a 32-deep queue with shedding from
    // depth 24 and batch_max above queue_cap, so dispatch happens only at
    // the explicit flush — each burst admits 32 (8 of them shed) and
    // rejects the remaining 68. The partition is pure admission
    // arithmetic: identical at every thread count.
    let burst_size = 100usize;
    let overload_cfg = ServeConfig {
        queue_cap: 32,
        shed_at: 24,
        batch_max: 256,
        threads: Some(4.min(parallelism)),
        ..ServeConfig::default()
    };
    let overload_script = {
        let mut s = ScriptBuilder::new();
        let mut rng = StdRng::seed_from_u64(0x5E4E3);
        for _ in 0..bursts {
            s.ekaq_burst(burst_size, d, 0.05, -2.5..2.5, &mut rng);
            s.flush();
        }
        s.shutdown();
        s.build()
    };
    let offered = (bursts * burst_size) as u64;
    let run = measure(&eval, &overload_cfg, &overload_script);
    assert_eq!(run.snap.queries, offered);
    assert_eq!(run.snap.admitted + run.snap.rejected, offered);
    assert!(run.snap.shed > 0, "overload run must shed");
    assert!(run.snap.rejected > 0, "overload run must reject");
    let offered_rps = offered as f64 / run.secs.max(1e-12);
    println!(
        "\n== serve_load/overload (queue 32, shed_at 24, {bursts} bursts of {burst_size}) =="
    );
    println!(
        "offered {offered_rps:.0} requests/s; partition: {} admitted ({} shed), \
         {} rejected; p50 {} us, p99 {} us",
        run.snap.admitted, run.snap.shed, run.snap.rejected, run.p50_us, run.p99_us
    );

    if let Ok(path) = std::env::var("KARL_BENCH_JSON") {
        let mut json = String::from("{\n");
        json.push_str("  \"bench\": \"serve_load\",\n");
        json.push_str(&format!("  \"points\": {n},\n"));
        json.push_str(&format!("  \"dims\": {d},\n"));
        json.push_str(&format!("  \"gamma\": {gamma},\n"));
        json.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
        json.push_str(
            "  \"note\": \"in-memory transport; latency is admission-to-response, \
             bucket upper edges (power-of-two us); the overload partition is \
             deterministic admission arithmetic\",\n",
        );
        json.push_str(&format!("  \"steady_requests\": {n_reqs},\n"));
        json.push_str("  \"steady\": [\n");
        for (i, (threads, rps, run)) in steady.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"threads\": {threads}, \"requests_per_s\": {rps:.1}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"batches\": {}}}{}\n",
                run.p50_us,
                run.p99_us,
                run.snap.batches,
                if i + 1 < steady.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        json.push_str("  \"overload\": {\n");
        json.push_str(&format!("    \"queue_cap\": {},\n", overload_cfg.queue_cap));
        json.push_str(&format!("    \"shed_at\": {},\n", overload_cfg.shed_at));
        json.push_str(&format!("    \"batch_max\": {},\n", overload_cfg.batch_max));
        json.push_str(&format!("    \"bursts\": {bursts},\n"));
        json.push_str(&format!("    \"burst_size\": {burst_size},\n"));
        json.push_str(&format!("    \"offered\": {offered},\n"));
        json.push_str(&format!("    \"admitted\": {},\n", run.snap.admitted));
        json.push_str(&format!("    \"shed\": {},\n", run.snap.shed));
        json.push_str(&format!("    \"rejected\": {},\n", run.snap.rejected));
        json.push_str(&format!(
            "    \"offered_requests_per_s\": {offered_rps:.1},\n"
        ));
        json.push_str(&format!("    \"p50_us\": {},\n", run.p50_us));
        json.push_str(&format!("    \"p99_us\": {}\n", run.p99_us));
        json.push_str("  }\n}\n");
        std::fs::write(&path, json).expect("write KARL_BENCH_JSON");
        println!("\nwrote {path}");
    }
}
