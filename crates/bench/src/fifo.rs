//! FIFO-refinement evaluator — an *ablation only*.
//!
//! The paper's framework refines the priority-queue entry with the largest
//! bound gap first (Section II-B). This evaluator replaces the priority
//! queue with a plain FIFO (breadth-first refinement) while using the same
//! KARL bounds, to quantify how much of the speedup comes from the
//! refinement order versus the bounds themselves
//! (`benches/ablation_queue.rs`).

use std::collections::VecDeque;

use karl_core::{node_bounds, BoundMethod, Kernel};
use karl_geom::{norm2, PointSet, Rect};
use karl_tree::KdTree;

/// Breadth-first (FIFO) variant of the TKAQ evaluator over a kd-tree with
/// non-negative weights.
#[derive(Debug)]
pub struct FifoEvaluator {
    tree: KdTree,
    kernel: Kernel,
    method: BoundMethod,
}

impl FifoEvaluator {
    /// Builds the ablation evaluator.
    ///
    /// # Panics
    /// Panics if any weight is negative (the ablation only covers the
    /// positive-weight path) or inputs are inconsistent.
    pub fn build(
        points: &PointSet,
        weights: &[f64],
        kernel: Kernel,
        method: BoundMethod,
        leaf_capacity: usize,
    ) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "FIFO ablation supports non-negative weights only"
        );
        Self {
            tree: KdTree::build(points.clone(), weights, leaf_capacity),
            kernel,
            method,
        }
    }

    /// Threshold query with FIFO refinement; returns `(answer, iterations)`.
    pub fn tkaq(&self, q: &[f64], tau: f64) -> (bool, usize) {
        let qn = norm2(q);
        let mut queue: VecDeque<(u32, f64, f64)> = VecDeque::new();
        let root = self.tree.node(self.tree.root());
        let b = node_bounds::<Rect>(self.method, &self.kernel, &root.shape, &root.stats, q, qn);
        let (mut lb, mut ub) = (b.lb, b.ub);
        queue.push_back((self.tree.root(), b.lb, b.ub));
        let mut iterations = 0;
        while let Some((id, elb, eub)) = queue.pop_front() {
            if lb >= tau {
                return (true, iterations);
            }
            if ub < tau {
                return (false, iterations);
            }
            iterations += 1;
            lb -= elb;
            ub -= eub;
            let node = self.tree.node(id);
            if node.is_leaf() {
                let exact = self.kernel.eval_range(
                    self.tree.points(),
                    self.tree.weights(),
                    self.tree.norms2(),
                    node.start,
                    node.end,
                    q,
                    qn,
                );
                lb += exact;
                ub += exact;
            } else {
                let (a, c) = node.children.expect("non-leaf has children");
                for child in [a, c] {
                    let n = self.tree.node(child);
                    let b =
                        node_bounds::<Rect>(self.method, &self.kernel, &n.shape, &n.stats, q, qn);
                    lb += b.lb;
                    ub += b.ub;
                    queue.push_back((child, b.lb, b.ub));
                }
            }
        }
        (0.5 * (lb + ub) >= tau, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_core::aggregate_exact;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    #[test]
    fn fifo_answers_match_ground_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let ps = PointSet::new(
            2,
            (0..400).map(|_| rng.random_range(-1.0..1.0)).collect::<Vec<_>>(),
        );
        let w = vec![1.0; 200];
        let kernel = Kernel::gaussian(2.0);
        let eval = FifoEvaluator::build(&ps, &w, kernel, BoundMethod::Karl, 8);
        for i in 0..20 {
            let q = ps.point(i).to_vec();
            let truth = aggregate_exact(&kernel, &ps, &w, &q);
            for mult in [0.7, 1.3] {
                let (ans, _) = eval.tkaq(&q, truth * mult);
                assert_eq!(ans, truth >= truth * mult);
            }
        }
    }
}
