//! # karl-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section V); see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results. This library holds the shared plumbing:
//! workload construction for the three weighting types, timing helpers and
//! table formatting.
//!
//! ## Scaling
//!
//! The paper runs on the raw datasets (up to 4.99 M points) with 10 000
//! queries. The harness defaults to `scale = 1/32` of each raw cardinality
//! (clamped to `[2 000, 100 000]`) and 500 queries so the whole suite runs
//! on a laptop in minutes. Override with environment variables:
//!
//! * `KARL_SCALE` — fraction of the raw cardinality (e.g. `1.0` for paper
//!   size),
//! * `KARL_QUERIES` — number of query points,
//! * `KARL_TRAIN_CAP` — maximum SVM training-set size (SMO is `O(n²)`).

pub mod fifo;
pub mod workloads;

use std::time::Instant;

/// Harness configuration, resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Fraction of each dataset's raw cardinality to generate.
    pub scale: f64,
    /// Number of query points per experiment.
    pub queries: usize,
    /// Cap on SVM training-set size.
    pub train_cap: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            scale: env_f64("KARL_SCALE", 1.0 / 32.0),
            queries: env_usize("KARL_QUERIES", 500),
            train_cap: env_usize("KARL_TRAIN_CAP", 2_500),
        }
    }
}

impl Config {
    /// The number of points to generate for a dataset with `n_raw` raw
    /// points, clamped to a laptop-friendly window.
    pub fn dataset_size(&self, n_raw: usize) -> usize {
        (((n_raw as f64) * self.scale).round() as usize).clamp(2_000, 100_000)
    }
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Measures throughput (calls/second) of `f` applied to each query row.
pub fn throughput<F: FnMut(&[f64])>(queries: &karl_geom::PointSet, mut f: F) -> f64 {
    let start = Instant::now();
    for q in queries.iter() {
        f(q);
    }
    queries.len() as f64 / start.elapsed().as_secs_f64().max(1e-12)
}

/// Formats a throughput figure the way the paper's tables do (3 significant
/// digits).
pub fn fmt_tp(tp: f64) -> String {
    if tp >= 100.0 {
        format!("{tp:.0}")
    } else if tp >= 10.0 {
        format!("{tp:.1}")
    } else {
        format!("{tp:.2}")
    }
}

/// Prints a header + aligned rows (simple fixed-width table).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_dataset_size_clamps() {
        let cfg = Config {
            scale: 1.0 / 32.0,
            queries: 10,
            train_cap: 100,
        };
        assert_eq!(cfg.dataset_size(4_990_000), 100_000);
        assert_eq!(cfg.dataset_size(32_561), 2_000);
        assert_eq!(cfg.dataset_size(918_991), 28_718);
    }

    #[test]
    fn fmt_tp_scales() {
        assert_eq!(fmt_tp(12345.6), "12346");
        assert_eq!(fmt_tp(123.4), "123");
        assert_eq!(fmt_tp(12.34), "12.3");
        assert_eq!(fmt_tp(1.234), "1.23");
    }

    #[test]
    fn throughput_counts_calls() {
        let qs = karl_geom::PointSet::new(1, vec![1.0, 2.0, 3.0]);
        let mut calls = 0;
        let tp = throughput(&qs, |_| calls += 1);
        assert_eq!(calls, 3);
        assert!(tp > 0.0);
    }
}
