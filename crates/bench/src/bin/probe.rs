//! Scratch probe for evaluator behaviour (not part of the experiment
//! suite).

use std::time::Instant;

use karl_core::{BoundMethod, Evaluator, Kernel, Query};
use karl_data::{by_name, sample_queries};
use karl_geom::Rect;
use karl_kde::Kde;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "miniboone".into());
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let gscale: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let ds = by_name(&name).expect("dataset").generate_n(n);
    let kde = Kde::with_gamma(ds.points.clone(), {
        let tmp = Kde::fit(ds.points.clone());
        tmp.gamma() * gscale
    });
    let w = vec![kde.weight(); n];
    let kernel = Kernel::gaussian(kde.gamma());
    println!("gamma {:.2} dims {}", kde.gamma(), ds.points.dims());
    let queries = sample_queries(&ds.points, 100, 9);

    for leaf in [20, 80, 320] {
        for method in [BoundMethod::Sota, BoundMethod::Karl] {
            let eval = Evaluator::<Rect>::build(&ds.points, &w, kernel, method, leaf);
            // mean density for tau
            let mu: f64 = queries.iter().map(|q| eval.exact(q)).sum::<f64>() / 100.0;
            let t = Instant::now();
            let mut iters = 0usize;
            for q in queries.iter() {
                iters += eval.run_query(q, Query::Tkaq { tau: mu }, None).iterations;
            }
            let el = t.elapsed();
            let t2 = Instant::now();
            let mut iters_e = 0usize;
            for q in queries.iter() {
                iters_e += eval.run_query(q, Query::Ekaq { eps: 0.2 }, None).iterations;
            }
            let el2 = t2.elapsed();
            println!(
                "leaf {leaf:>4} {method:?}: tkaq {:>8.0} q/s ({:>6.1} iters/q) | ekaq {:>8.0} q/s ({:>6.1} iters/q)",
                100.0 / el.as_secs_f64(),
                iters as f64 / 100.0,
                100.0 / el2.as_secs_f64(),
                iters_e as f64 / 100.0,
            );
        }
    }
}
