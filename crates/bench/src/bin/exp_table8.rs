//! **Table VIII** — offline index tuning: throughput of KARL with the
//! worst grid candidate (`KARL_worst`), the candidate recommended by the
//! sample-based tuner (`KARL_auto`, |S| = 1000), and the true best grid
//! candidate measured on the real query set (`KARL_best`). The paper's
//! point: auto lands within a few percent of best.
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_table8
//! ```

use karl_bench::workloads::{build_type1, build_type2, build_type3, KernelFamily, Workload};
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, OfflineTuner, Query};
use karl_data::sample_queries;

fn main() {
    let cfg = Config::default();
    let mut rows = Vec::new();
    for (qtype, name) in [
        ("I-eps", "miniboone"),
        ("I-eps", "home"),
        ("I-eps", "susy"),
        ("I-tau", "miniboone"),
        ("I-tau", "home"),
        ("I-tau", "susy"),
        ("II-tau", "nsl-kdd"),
        ("II-tau", "kdd99"),
        ("II-tau", "covtype"),
        ("III-tau", "ijcnn1"),
        ("III-tau", "a9a"),
        ("III-tau", "covtype-b"),
    ] {
        let (w, query) = match qtype {
            "I-eps" => {
                let w = build_type1(name, &cfg);
                (w, Query::Ekaq { eps: 0.2 })
            }
            "I-tau" => {
                let w = build_type1(name, &cfg);
                let q = Query::Tkaq { tau: w.tau };
                (w, q)
            }
            "II-tau" => {
                let w = build_type2(name, KernelFamily::Gaussian, &cfg);
                let q = Query::Tkaq { tau: w.tau };
                (w, q)
            }
            _ => {
                let w = build_type3(name, KernelFamily::Gaussian, &cfg);
                let q = Query::Tkaq { tau: w.tau };
                (w, q)
            }
        };
        rows.push(measure(qtype, &w, query, &cfg));
        println!("  [{qtype} {name}] done");
    }
    print_table(
        "Table VIII: offline tuning (queries/sec)",
        &["type", "dataset", "KARL_worst", "KARL_auto", "KARL_best", "auto/best"],
        &rows,
    );
}

fn measure(qtype: &str, w: &Workload, query: Query, cfg: &Config) -> Vec<String> {
    let tuner = OfflineTuner::default();
    // Ground truth: every candidate measured on the real query set.
    let mut best: f64 = 0.0;
    let mut worst = f64::INFINITY;
    for &kind in &[IndexKind::Kd, IndexKind::Ball] {
        for &cap in &tuner.leaf_capacities {
            let eval =
                AnyEvaluator::build(kind, &w.points, &w.weights, w.kernel, BoundMethod::Karl, cap);
            let tp = throughput(&w.queries, |q| {
                std::hint::black_box(eval.answer(q, query));
            });
            best = best.max(tp);
            worst = worst.min(tp);
        }
    }
    // Auto: tuned on a 1000-point sample, then measured on the real set.
    let sample = sample_queries(&w.points, cfg.queries.min(1_000), 0xFACE);
    let tuned = tuner.tune(&w.points, &w.weights, w.kernel, BoundMethod::Karl, &sample, query);
    let auto_tp = throughput(&w.queries, |q| {
        std::hint::black_box(tuned.best.answer(q, query));
    });
    vec![
        qtype.to_string(),
        w.name.to_string(),
        fmt_tp(worst),
        fmt_tp(auto_tp),
        fmt_tp(best),
        format!("{:.2}", auto_tp / best),
    ]
}
