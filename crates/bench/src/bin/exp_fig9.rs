//! **Figure 9** — sensitivity of query-type I-τ throughput to the
//! threshold τ, swept over μ−2σ … μ+4σ on miniboone, home and susy, for
//! SCAN / SOTA_best / KARL_auto. (Like the paper, negative thresholds are
//! skipped.)
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig9
//! ```

use karl_bench::workloads::build_type1;
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, OfflineTuner, Query, Scan};
use karl_data::sample_queries;

fn main() {
    let cfg = Config::default();
    for name in ["miniboone", "home", "susy"] {
        let w = build_type1(name, &cfg);
        let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
        let sample = sample_queries(&w.points, cfg.queries.min(1_000), 0xFACE);
        let mut rows = Vec::new();
        for k in [-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0, 4.0] {
            let tau = w.tau + k * w.sigma;
            if tau <= 0.0 {
                continue; // the paper skips negative thresholds
            }
            let query = Query::Tkaq { tau };
            let scan_tp = throughput(&w.queries, |q| {
                std::hint::black_box(scan.tkaq(q, tau));
            });
            let mut sota_tp: f64 = 0.0;
            for &cap in &[20usize, 80, 320] {
                let eval = AnyEvaluator::build(
                    IndexKind::Kd,
                    &w.points,
                    &w.weights,
                    w.kernel,
                    BoundMethod::Sota,
                    cap,
                );
                let tp = throughput(&w.queries, |q| {
                    std::hint::black_box(eval.tkaq(q, tau));
                });
                sota_tp = sota_tp.max(tp);
            }
            let tuned = OfflineTuner::default().tune(
                &w.points,
                &w.weights,
                w.kernel,
                BoundMethod::Karl,
                &sample,
                query,
            );
            let karl_tp = throughput(&w.queries, |q| {
                std::hint::black_box(tuned.best.tkaq(q, tau));
            });
            rows.push(vec![
                format!("mu{k:+.1}sigma"),
                format!("{tau:.5}"),
                fmt_tp(scan_tp),
                fmt_tp(sota_tp),
                fmt_tp(karl_tp),
                format!("{:.1}x", karl_tp / sota_tp),
            ]);
        }
        print_table(
            &format!("Figure 9: throughput vs threshold — {name} (I-tau, n={})", w.points.len()),
            &["tau", "value", "SCAN", "SOTA_best", "KARL_auto", "KARL/SOTA"],
            &rows,
        );
    }
}
