//! **Figure 10** — sensitivity of query-type I-ε throughput to the relative
//! error budget ε ∈ {0.05 … 0.3} on miniboone, home and susy, for
//! SCAN / SOTA_best / KARL_auto.
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig10
//! ```

use karl_bench::workloads::build_type1;
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, OfflineTuner, Query, Scan};
use karl_data::sample_queries;

fn main() {
    let cfg = Config::default();
    for name in ["miniboone", "home", "susy"] {
        let w = build_type1(name, &cfg);
        let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
        let sample = sample_queries(&w.points, cfg.queries.min(1_000), 0xFACE);
        let mut rows = Vec::new();
        for eps in [0.05, 0.1, 0.15, 0.2, 0.25, 0.3] {
            let query = Query::Ekaq { eps };
            let scan_tp = throughput(&w.queries, |q| {
                std::hint::black_box(scan.ekaq(q, eps));
            });
            let mut sota_tp: f64 = 0.0;
            for &cap in &[20usize, 80, 320] {
                let eval = AnyEvaluator::build(
                    IndexKind::Kd,
                    &w.points,
                    &w.weights,
                    w.kernel,
                    BoundMethod::Sota,
                    cap,
                );
                let tp = throughput(&w.queries, |q| {
                    std::hint::black_box(eval.ekaq(q, eps));
                });
                sota_tp = sota_tp.max(tp);
            }
            let tuned = OfflineTuner::default().tune(
                &w.points,
                &w.weights,
                w.kernel,
                BoundMethod::Karl,
                &sample,
                query,
            );
            let karl_tp = throughput(&w.queries, |q| {
                std::hint::black_box(tuned.best.ekaq(q, eps));
            });
            rows.push(vec![
                format!("{eps:.2}"),
                fmt_tp(scan_tp),
                fmt_tp(sota_tp),
                fmt_tp(karl_tp),
                format!("{:.1}x", karl_tp / sota_tp),
            ]);
        }
        print_table(
            &format!("Figure 10: throughput vs epsilon — {name} (I-eps, n={})", w.points.len()),
            &["eps", "SCAN", "SOTA_best", "KARL_auto", "KARL/SOTA"],
            &rows,
        );
    }
}
