//! **Figure 1** — the motivating kernel-density picture: the density
//! surface over the first two dimensions of the miniboone dataset, printed
//! as a 2-d grid (the paper's heat map) computed with ε-approximate
//! queries. Dense regions — the "particle search" targets — are the peaks.
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig1
//! ```

use karl_bench::Config;
use karl_core::BoundMethod;
use karl_data::by_name;
use karl_geom::PointSet;
use karl_kde::Kde;

const GRID: usize = 32;

fn main() {
    let cfg = Config::default();
    let spec = by_name("miniboone").expect("registry dataset");
    let ds = spec.generate_n(cfg.dataset_size(spec.n_raw));

    // The paper plots dims 1–2 of miniboone; take the same slice.
    let mut plane_data = Vec::with_capacity(ds.points.len() * 2);
    for p in ds.points.iter() {
        plane_data.push(p[0]);
        plane_data.push(p[1]);
    }
    let plane = PointSet::new(2, plane_data);
    let kde = Kde::fit(plane.clone());
    let eval = kde.evaluator(BoundMethod::Karl, 80);

    println!(
        "Figure 1: KDE on miniboone dims 1-2 (n = {}, gamma = {:.1}, eps = 0.05)",
        plane.len(),
        kde.gamma()
    );
    let mut field = vec![0.0f64; GRID * GRID];
    let mut peak: f64 = 0.0;
    for gy in 0..GRID {
        for gx in 0..GRID {
            let q = [
                (gx as f64 + 0.5) / GRID as f64,
                (gy as f64 + 0.5) / GRID as f64,
            ];
            let d = eval.ekaq(&q, 0.05);
            field[gy * GRID + gx] = d;
            peak = peak.max(d);
        }
    }
    // ASCII heat map, high density = darker glyph.
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for gy in (0..GRID).rev() {
        let mut row = String::with_capacity(GRID);
        for gx in 0..GRID {
            let v = field[gy * GRID + gx] / peak;
            let idx = (v * (shades.len() - 1) as f64).round() as usize;
            row.push(shades[idx.min(shades.len() - 1)]);
        }
        println!("|{row}|");
    }
    println!("peak density = {peak:.4}; grid = {GRID}x{GRID} over [0,1]^2");

    // Also emit the 1-d marginal series along the peak row (a printable
    // version of the figure's surface).
    let peak_row = (0..GRID * GRID)
        .max_by(|&a, &b| field[a].total_cmp(&field[b]))
        .unwrap()
        / GRID;
    println!("\ndensity along row y={peak_row} (x, density):");
    for gx in 0..GRID {
        println!(
            "{:.3} {:.5}",
            (gx as f64 + 0.5) / GRID as f64,
            field[peak_row * GRID + gx]
        );
    }
}
