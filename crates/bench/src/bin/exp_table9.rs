//! **Table IX** — the in-situ scenario: the dataset arrives with the query
//! stream, so index construction and tuning time count toward the
//! end-to-end throughput. Compares the scan baseline (no build cost) with
//! `SOTA_online` and `KARL_online` (single kd-tree + level probing on a 1%
//! sample; Section III-C).
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_table9
//! ```

use karl_bench::workloads::{build_type1, build_type2, build_type3, KernelFamily};
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{BoundMethod, OnlineTuner, Query, Scan};

fn main() {
    let cfg = Config::default();
    let mut rows = Vec::new();
    for (qtype, name) in [
        ("I-eps", "miniboone"),
        ("I-eps", "home"),
        ("I-eps", "susy"),
        ("I-tau", "miniboone"),
        ("I-tau", "home"),
        ("I-tau", "susy"),
        ("II-tau", "nsl-kdd"),
        ("II-tau", "kdd99"),
        ("II-tau", "covtype"),
        ("III-tau", "ijcnn1"),
        ("III-tau", "a9a"),
        ("III-tau", "covtype-b"),
    ] {
        let (w, query) = match qtype {
            "I-eps" => {
                let w = build_type1(name, &cfg);
                (w, Query::Ekaq { eps: 0.2 })
            }
            "I-tau" => {
                let w = build_type1(name, &cfg);
                let q = Query::Tkaq { tau: w.tau };
                (w, q)
            }
            "II-tau" => {
                let w = build_type2(name, KernelFamily::Gaussian, &cfg);
                let q = Query::Tkaq { tau: w.tau };
                (w, q)
            }
            _ => {
                let w = build_type3(name, KernelFamily::Gaussian, &cfg);
                let q = Query::Tkaq { tau: w.tau };
                (w, q)
            }
        };
        // Baseline: plain scan, no index to build.
        let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
        let base_tp = throughput(&w.queries, |q| match query {
            Query::Tkaq { tau } => {
                std::hint::black_box(scan.tkaq(q, tau));
            }
            Query::Ekaq { eps } => {
                std::hint::black_box(scan.ekaq(q, eps));
            }
            Query::Within { .. } => unreachable!("harness uses TKAQ/eKAQ only"),
        });
        let tuner = OnlineTuner::default();
        let sota = tuner.run(&w.points, &w.weights, w.kernel, BoundMethod::Sota, &w.queries, query);
        let karl = tuner.run(&w.points, &w.weights, w.kernel, BoundMethod::Karl, &w.queries, query);
        rows.push(vec![
            qtype.to_string(),
            w.name.to_string(),
            fmt_tp(base_tp),
            fmt_tp(sota.throughput),
            fmt_tp(karl.throughput),
            format!("lvl {}", karl.chosen_level),
            format!("{:.1}x", karl.throughput / sota.throughput),
        ]);
        println!("  [{qtype} {name}] done");
    }
    print_table(
        "Table IX: in-situ end-to-end throughput (queries/sec, incl. build + tuning)",
        &["type", "dataset", "baseline", "SOTA_online", "KARL_online", "level", "KARL/SOTA"],
        &rows,
    );
}
