//! **Figure 6** — bound trajectories of SOTA vs KARL on a Type I-τ query
//! over the home dataset: global lower/upper bounds per refinement
//! iteration, showing KARL's bounds converging (and therefore terminating)
//! much sooner.
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig6
//! ```

use karl_bench::workloads::build_type1;
use karl_bench::{print_table, Config};
use karl_core::{BoundMethod, Evaluator};
use karl_geom::Rect;

fn main() {
    let cfg = Config::default();
    let w = build_type1("home", &cfg);
    // kd-tree with leaf capacity 80, as in the paper's case study.
    let karl = Evaluator::<Rect>::build(&w.points, &w.weights, w.kernel, BoundMethod::Karl, 80);
    let sota = karl.clone().with_method(BoundMethod::Sota);

    // Pick the first query whose decision is not instantaneous for SOTA so
    // the trace is interesting.
    let mut chosen = w.queries.point(0).to_vec();
    for q in w.queries.iter() {
        let (_, t) = sota.trace_tkaq(q, w.tau);
        if t.len() > 40 {
            chosen = q.to_vec();
            break;
        }
    }
    let (ans_sota, trace_sota) = sota.trace_tkaq(&chosen, w.tau);
    let (ans_karl, trace_karl) = karl.trace_tkaq(&chosen, w.tau);
    assert_eq!(ans_sota, ans_karl, "methods must agree");
    println!(
        "home, type I-tau, tau = {:.5}, answer = {}, n = {}",
        w.tau,
        ans_sota,
        w.points.len()
    );
    println!(
        "SOTA stops after {} iterations; KARL stops after {} iterations ({}x fewer)",
        trace_sota.len() - 1,
        trace_karl.len() - 1,
        (trace_sota.len() - 1).max(1) / (trace_karl.len() - 1).max(1)
    );

    // Print both trajectories on a common iteration grid (12 samples).
    let samples = 12usize;
    let longest = trace_sota.len().max(trace_karl.len());
    let mut rows = Vec::new();
    for s in 0..=samples {
        let it = s * (longest - 1) / samples;
        let pick = |t: &[karl_core::TraceStep]| {
            let step = &t[it.min(t.len() - 1)];
            (step.lb, step.ub)
        };
        let (slb, sub) = pick(&trace_sota);
        let (klb, kub) = pick(&trace_karl);
        rows.push(vec![
            it.to_string(),
            format!("{slb:.5}"),
            format!("{sub:.5}"),
            format!("{klb:.5}"),
            format!("{kub:.5}"),
        ]);
    }
    print_table(
        "Figure 6: bound value vs iteration",
        &["iter", "LB_SOTA", "UB_SOTA", "LB_KARL", "UB_KARL"],
        &rows,
    );
}
