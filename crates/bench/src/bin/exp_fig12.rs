//! **Figure 12** — throughput vs dimensionality on mnist (784-d), reduced
//! with PCA to 32…784 dimensions, query type I-τ (τ = μ), for SCAN /
//! SOTA_best / KARL_auto.
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig12
//! ```

use karl_bench::workloads::build_type1_from_points;
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, OfflineTuner, Query, Scan};
use karl_data::{by_name, sample_queries, Pca};

fn main() {
    let cfg = Config::default();
    let spec = by_name("mnist").expect("registry dataset");
    let ds = spec.generate_n(cfg.dataset_size(spec.n_raw).max(4_000));
    println!("fitting PCA on {}x{}...", ds.points.len(), ds.points.dims());
    let pca = Pca::fit(&ds.points);

    let mut rows = Vec::new();
    for dims in [32usize, 64, 128, 256, 512, 784] {
        // Project without per-dimension re-normalization: re-stretching the
        // low-variance trailing components to [0,1] would drown the
        // distances in amplified noise; the paper (like Scikit-learn's PCA)
        // keeps the projected coordinates as-is.
        let pts = pca.project(&ds.points, dims);
        let w = build_type1_from_points("mnist", pts, &cfg);
        let query = Query::Tkaq { tau: w.tau };
        let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
        let scan_tp = throughput(&w.queries, |q| {
            std::hint::black_box(scan.tkaq(q, w.tau));
        });
        let mut sota_tp: f64 = 0.0;
        for &cap in &[20usize, 80, 320] {
            let eval = AnyEvaluator::build(
                IndexKind::Kd,
                &w.points,
                &w.weights,
                w.kernel,
                BoundMethod::Sota,
                cap,
            );
            let tp = throughput(&w.queries, |q| {
                std::hint::black_box(eval.tkaq(q, w.tau));
            });
            sota_tp = sota_tp.max(tp);
        }
        let sample = sample_queries(&w.points, cfg.queries.min(500), 0xFACE);
        let tuned = OfflineTuner::default().tune(
            &w.points,
            &w.weights,
            w.kernel,
            BoundMethod::Karl,
            &sample,
            query,
        );
        let karl_tp = throughput(&w.queries, |q| {
            std::hint::black_box(tuned.best.tkaq(q, w.tau));
        });
        rows.push(vec![
            dims.to_string(),
            fmt_tp(scan_tp),
            fmt_tp(sota_tp),
            fmt_tp(karl_tp),
            format!("{:.1}x", karl_tp / sota_tp),
        ]);
        println!("  [dims {dims}] done");
    }
    print_table(
        "Figure 12: throughput vs dimensionality — mnist (I-tau)",
        &["dims", "SCAN", "SOTA_best", "KARL_auto", "KARL/SOTA"],
        &rows,
    );
}
