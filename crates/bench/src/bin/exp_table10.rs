//! **Table X** — the polynomial kernel (degree 3, LIBSVM default), data in
//! `[−1, 1]^d`: throughput of the scan baseline, SOTA_best and KARL_auto
//! for query types II-τ and III-τ. This exercises the Section IV-B bound
//! machinery (mixed-curvature envelopes with the rotate-down / rotate-up
//! lines of Figure 8).
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_table10
//! ```

use karl_bench::workloads::{build_type2_with_nu, build_type3, KernelFamily};
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, OfflineTuner, Query, Scan};
use karl_data::sample_queries;

fn main() {
    let cfg = Config::default();
    let mut rows = Vec::new();
    for (qtype, name) in [
        ("II-tau", "nsl-kdd"),
        ("II-tau", "kdd99"),
        ("II-tau", "covtype"),
        ("III-tau", "ijcnn1"),
        ("III-tau", "a9a"),
        ("III-tau", "covtype-b"),
    ] {
        let w = match qtype {
            "II-tau" => {
                // Match the paper's *scaled* model size: its polynomial
                // one-class models keep n_model support vectors out of
                // n_raw; at 1/32-scale training that ratio would leave only
                // tens of SVs, so pick ν to land n_model/32 support vectors
                // (ν ≈ |SV|/n for one-class SVM).
                let target = match name {
                    "nsl-kdd" => 6_738.0,
                    "kdd99" => 19_462.0,
                    _ => 14_165.0, // covtype
                } / 32.0;
                let train_n = cfg.train_cap.min(cfg.dataset_size(
                    karl_data::by_name(name).expect("dataset").n_raw,
                )) as f64;
                let nu = (target / train_n).clamp(0.05, 0.6);
                build_type2_with_nu(name, KernelFamily::Polynomial, &cfg, Some(nu))
            }
            _ => build_type3(name, KernelFamily::Polynomial, &cfg),
        };
        let query = Query::Tkaq { tau: w.tau };

        let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
        let scan_tp = throughput(&w.queries, |q| {
            std::hint::black_box(scan.tkaq(q, w.tau));
        });
        let mut sota_tp: f64 = 0.0;
        for &kind in &[IndexKind::Kd, IndexKind::Ball] {
            for &cap in &[20usize, 80, 320] {
                let eval = AnyEvaluator::build(
                    kind,
                    &w.points,
                    &w.weights,
                    w.kernel,
                    BoundMethod::Sota,
                    cap,
                );
                let tp = throughput(&w.queries, |q| {
                    std::hint::black_box(eval.tkaq(q, w.tau));
                });
                sota_tp = sota_tp.max(tp);
            }
        }
        let sample = sample_queries(&w.points, cfg.queries.min(1_000), 0xFACE);
        let tuned = OfflineTuner::default().tune(
            &w.points,
            &w.weights,
            w.kernel,
            BoundMethod::Karl,
            &sample,
            query,
        );
        let karl_tp = throughput(&w.queries, |q| {
            std::hint::black_box(tuned.best.tkaq(q, w.tau));
        });
        rows.push(vec![
            qtype.to_string(),
            w.name.to_string(),
            w.points.len().to_string(),
            fmt_tp(scan_tp),
            fmt_tp(sota_tp),
            fmt_tp(karl_tp),
            format!("{:.1}x", karl_tp / sota_tp),
        ]);
        println!("  [{qtype} {name}] done");
    }
    print_table(
        "Table X: polynomial kernel (deg 3) throughput (queries/sec)",
        &["type", "dataset", "|SV|", "baseline", "SOTA_best", "KARL_auto", "KARL/SOTA"],
        &rows,
    );
}
