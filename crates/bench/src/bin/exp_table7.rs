//! **Table VII** — throughput of all methods for the four query types
//! (I-ε, I-τ, II-τ, III-τ) on the registry datasets.
//!
//! Columns mirror the paper: SCAN, LIBSVM (sequential, norm-expansion;
//! `n/a` for I-ε exactly as in the paper), SOTA_best (constant bounds, best
//! index over the tuning grid — this is also what Scikit-learn's I-ε path
//! implements), KARL_auto (linear bounds, index auto-tuned on a query
//! sample).
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_table7
//! ```

use karl_bench::workloads::{build_type1, build_type2, build_type3, KernelFamily, Workload};
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{
    AnyEvaluator, BoundMethod, IndexKind, LibSvmScan, OfflineTuner, Query, Scan,
};
use karl_data::sample_queries;

fn main() {
    let cfg = Config::default();
    println!("Table VII reproduction (scale={}, |Q|={})", cfg.scale, cfg.queries);

    let mut rows = Vec::new();
    for (qtype, name) in [
        ("I-eps", "miniboone"),
        ("I-eps", "home"),
        ("I-eps", "susy"),
        ("I-tau", "miniboone"),
        ("I-tau", "home"),
        ("I-tau", "susy"),
        ("II-tau", "nsl-kdd"),
        ("II-tau", "kdd99"),
        ("II-tau", "covtype"),
        ("III-tau", "ijcnn1"),
        ("III-tau", "a9a"),
        ("III-tau", "covtype-b"),
    ] {
        let (w, query) = build(qtype, name, &cfg);
        let row = measure_row(qtype, &w, query, &cfg);
        println!("  [{qtype} {name}] done");
        rows.push(row);
    }
    print_table(
        "Table VII: query throughput (queries/sec)",
        &["type", "dataset", "n", "SCAN", "LIBSVM", "SOTA_best", "KARL_auto", "KARL/SOTA"],
        &rows,
    );
    println!("(Scikit_best for I-eps is algorithmically SOTA_best: Scikit-learn implements the same constant bounds.)");
}

fn build(qtype: &str, name: &str, cfg: &Config) -> (Workload, Query) {
    match qtype {
        "I-eps" => (build_type1(name, cfg), Query::Ekaq { eps: 0.2 }),
        "I-tau" => {
            let w = build_type1(name, cfg);
            let q = Query::Tkaq { tau: w.tau };
            (w, q)
        }
        "II-tau" => {
            let w = build_type2(name, KernelFamily::Gaussian, cfg);
            let q = Query::Tkaq { tau: w.tau };
            (w, q)
        }
        "III-tau" => {
            let w = build_type3(name, KernelFamily::Gaussian, cfg);
            let q = Query::Tkaq { tau: w.tau };
            (w, q)
        }
        _ => unreachable!(),
    }
}

fn measure_row(qtype: &str, w: &Workload, query: Query, cfg: &Config) -> Vec<String> {
    // Baselines.
    let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
    let scan_tp = throughput(&w.queries, |q| match query {
        Query::Tkaq { tau } => {
            std::hint::black_box(scan.tkaq(q, tau));
        }
        Query::Ekaq { eps } => {
            std::hint::black_box(scan.ekaq(q, eps));
        }
        Query::Within { .. } => unreachable!("harness uses TKAQ/eKAQ only"),
    });
    let libsvm_tp = if matches!(query, Query::Tkaq { .. }) {
        let ls = LibSvmScan::new(w.points.clone(), w.weights.clone(), w.kernel);
        let tp = throughput(&w.queries, |q| {
            if let Query::Tkaq { tau } = query {
                std::hint::black_box(ls.tkaq(q, tau));
            }
        });
        fmt_tp(tp)
    } else {
        "n/a".to_string() // LIBSVM has no ε-approximate mode (paper Table II)
    };

    // SOTA_best: the best candidate measured on the full query set.
    let sota_tp = best_throughput(w, query, BoundMethod::Sota);

    // KARL_auto: tune on a held-out sample, then measure the tuned index.
    let sample = sample_queries(&w.points, cfg.queries.min(1_000), 0xFACE);
    let tuned = OfflineTuner::default().tune(
        &w.points,
        &w.weights,
        w.kernel,
        BoundMethod::Karl,
        &sample,
        query,
    );
    let karl_tp = throughput(&w.queries, |q| {
        std::hint::black_box(tuned.best.answer(q, query));
    });

    vec![
        qtype.to_string(),
        w.name.to_string(),
        w.points.len().to_string(),
        fmt_tp(scan_tp),
        libsvm_tp,
        fmt_tp(sota_tp),
        fmt_tp(karl_tp),
        format!("{:.1}x", karl_tp / sota_tp),
    ]
}

/// Max throughput over the full tuning grid, measured on the real queries.
fn best_throughput(w: &Workload, query: Query, method: BoundMethod) -> f64 {
    let tuner = OfflineTuner::default();
    let mut best: f64 = 0.0;
    for &kind in &[IndexKind::Kd, IndexKind::Ball] {
        for &cap in &tuner.leaf_capacities {
            let eval = AnyEvaluator::build(kind, &w.points, &w.weights, w.kernel, method, cap);
            let tp = throughput(&w.queries, |q| {
                std::hint::black_box(eval.answer(q, query));
            });
            best = best.max(tp);
        }
    }
    best
}
