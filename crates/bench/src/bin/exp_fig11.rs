//! **Figure 11** — throughput vs dataset size on susy (subsampled), for
//! both query types I-τ (τ = μ) and I-ε (ε = 0.2), comparing SCAN /
//! SOTA_best / KARL_auto. Expectation from the paper: throughput falls with
//! size for everyone, but KARL stays about an order of magnitude ahead.
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig11
//! ```

use karl_bench::workloads::build_type1_from_points;
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, OfflineTuner, Query, Scan};
use karl_data::{by_name, sample_queries, subsample};

fn main() {
    let cfg = Config::default();
    let spec = by_name("susy").expect("registry dataset");
    let full_n = cfg.dataset_size(spec.n_raw);
    let full = spec.generate_n(full_n);
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];

    for (label, mk_query) in [
        ("I-tau (tau=mu)", QueryKind::Tau),
        ("I-eps (eps=0.2)", QueryKind::Eps),
    ] {
        let mut rows = Vec::new();
        for frac in fractions {
            let n = ((full_n as f64) * frac) as usize;
            let pts = subsample(&full.points, n, 0xD1CE);
            let w = build_type1_from_points("susy", pts, &cfg);
            let query = match mk_query {
                QueryKind::Tau => Query::Tkaq { tau: w.tau },
                QueryKind::Eps => Query::Ekaq { eps: 0.2 },
            };
            let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
            let scan_tp = throughput(&w.queries, |q| match query {
                Query::Tkaq { tau } => {
                    std::hint::black_box(scan.tkaq(q, tau));
                }
                Query::Ekaq { eps } => {
                    std::hint::black_box(scan.ekaq(q, eps));
                }
                Query::Within { .. } => unreachable!("harness uses TKAQ/eKAQ only"),
            });
            let mut sota_tp: f64 = 0.0;
            for &cap in &[20usize, 80, 320] {
                let eval = AnyEvaluator::build(
                    IndexKind::Kd,
                    &w.points,
                    &w.weights,
                    w.kernel,
                    BoundMethod::Sota,
                    cap,
                );
                let tp = throughput(&w.queries, |q| {
                    std::hint::black_box(eval.answer(q, query));
                });
                sota_tp = sota_tp.max(tp);
            }
            let sample = sample_queries(&w.points, cfg.queries.min(1_000), 0xFACE);
            let tuned = OfflineTuner::default().tune(
                &w.points,
                &w.weights,
                w.kernel,
                BoundMethod::Karl,
                &sample,
                query,
            );
            let karl_tp = throughput(&w.queries, |q| {
                std::hint::black_box(tuned.best.answer(q, query));
            });
            rows.push(vec![
                w.points.len().to_string(),
                fmt_tp(scan_tp),
                fmt_tp(sota_tp),
                fmt_tp(karl_tp),
                format!("{:.1}x", karl_tp / sota_tp),
            ]);
        }
        print_table(
            &format!("Figure 11: throughput vs dataset size — susy, {label}"),
            &["n", "SCAN", "SOTA_best", "KARL_auto", "KARL/SOTA"],
            &rows,
        );
    }
}

#[derive(Clone, Copy)]
enum QueryKind {
    Tau,
    Eps,
}
