//! **Figure 13** — tightness of the bound functions: for a kd-tree with
//! leaf capacity 80, the average relative error of the level-wise
//! aggregated lower/upper bounds against the exact `F_P(q)`:
//!
//! ```text
//! Error = (1/L)·Σ_l |Σ_{R_j ∈ level l} bound(q, R_j) − F_P(q)| / |F_P(q)|
//! ```
//!
//! reported for SOTA and KARL on all nine evaluation datasets (Type I, II,
//! III rows of the paper's figure).
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig13
//! ```

use karl_bench::workloads::{build_type1, build_type2, build_type3, KernelFamily, Workload};
use karl_bench::{print_table, Config};
use karl_core::{node_bounds, BoundMethod, Evaluator};
use karl_geom::{norm2, Rect};
use karl_tree::Tree;

fn main() {
    let cfg = Config::default();
    let mut rows = Vec::new();
    for (qtype, name) in [
        ("I", "miniboone"),
        ("I", "home"),
        ("I", "susy"),
        ("II", "nsl-kdd"),
        ("II", "kdd99"),
        ("II", "covtype"),
        ("III", "ijcnn1"),
        ("III", "a9a"),
        ("III", "covtype-b"),
    ] {
        let w = match qtype {
            "I" => build_type1(name, &cfg),
            "II" => build_type2(name, KernelFamily::Gaussian, &cfg),
            _ => build_type3(name, KernelFamily::Gaussian, &cfg),
        };
        let (e_lb_sota, e_ub_sota) = tightness(&w, BoundMethod::Sota);
        let (e_lb_karl, e_ub_karl) = tightness(&w, BoundMethod::Karl);
        rows.push(vec![
            qtype.to_string(),
            name.to_string(),
            format!("{e_lb_sota:.2e}"),
            format!("{e_lb_karl:.2e}"),
            format!("{e_ub_sota:.2e}"),
            format!("{e_ub_karl:.2e}"),
        ]);
        println!("  [{name}] done");
    }
    print_table(
        "Figure 13: average bound error per tree level (kd-tree, leaf 80)",
        &["type", "dataset", "ErrLB_SOTA", "ErrLB_KARL", "ErrUB_SOTA", "ErrUB_KARL"],
        &rows,
    );
}

/// Mean over queries and tree levels of the relative LB/UB error.
fn tightness(w: &Workload, method: BoundMethod) -> (f64, f64) {
    let eval = Evaluator::<Rect>::build(&w.points, &w.weights, w.kernel, method, 80);
    let nq = w.queries.len().min(100);
    let mut err_lb = 0.0;
    let mut err_ub = 0.0;
    for qi in 0..nq {
        let q = w.queries.point(qi);
        let qn = norm2(q);
        let truth = eval.exact(q);
        let denom = truth.abs().max(1e-12);
        let levels = eval.max_depth() + 1;
        for l in 0..levels {
            let mut lb = 0.0;
            let mut ub = 0.0;
            let mut side = |tree: &Tree<Rect>, sign: f64| {
                for id in tree.frontier_at_depth(l) {
                    let node = tree.node(id);
                    let b = node_bounds(method, &w.kernel, &node.shape, &node.stats, q, qn);
                    if sign > 0.0 {
                        lb += b.lb;
                        ub += b.ub;
                    } else {
                        lb -= b.ub;
                        ub -= b.lb;
                    }
                }
            };
            if let Some(t) = eval.pos_tree() {
                side(t, 1.0);
            }
            if let Some(t) = eval.neg_tree() {
                side(t, -1.0);
            }
            err_lb += (lb - truth).abs() / denom / levels as f64;
            err_ub += (ub - truth).abs() / denom / levels as f64;
        }
    }
    (err_lb / nq as f64, err_ub / nq as f64)
}
