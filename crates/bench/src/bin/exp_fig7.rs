//! **Figure 7** — KARL throughput for query type I-τ as a function of the
//! leaf-node capacity (10…640), for the kd-tree and the ball-tree, on the
//! home and susy datasets. Demonstrates why automatic index tuning matters:
//! the best/worst gap within one dataset reaches several ×, and the optimum
//! moves across datasets.
//!
//! ```text
//! cargo run --release -p karl-bench --bin exp_fig7
//! ```

use karl_bench::workloads::build_type1;
use karl_bench::{fmt_tp, print_table, throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind};

fn main() {
    let cfg = Config::default();
    for name in ["home", "susy"] {
        let w = build_type1(name, &cfg);
        let caps = [10usize, 20, 40, 80, 160, 320, 640];
        let mut rows = Vec::new();
        let mut best: (f64, &str, usize) = (0.0, "", 0);
        let mut worst = f64::INFINITY;
        for cap in caps {
            let mut row = vec![cap.to_string()];
            for (kname, kind) in [("kd", IndexKind::Kd), ("ball", IndexKind::Ball)] {
                let eval = AnyEvaluator::build(
                    kind,
                    &w.points,
                    &w.weights,
                    w.kernel,
                    BoundMethod::Karl,
                    cap,
                );
                let tp = throughput(&w.queries, |q| {
                    std::hint::black_box(eval.tkaq(q, w.tau));
                });
                if tp > best.0 {
                    best = (tp, kname, cap);
                }
                worst = worst.min(tp);
                row.push(fmt_tp(tp));
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 7: KARL throughput vs leaf capacity — {name} (I-tau, n={})", w.points.len()),
            &["leaf", "KARL_kd", "KARL_ball"],
            &rows,
        );
        println!(
            "best: {} @ {} ({} q/s); best/worst = {:.1}x",
            best.1,
            best.2,
            fmt_tp(best.0),
            best.0 / worst
        );
    }
}
