//! Scratch probe for SVM workloads (not part of the experiment suite).
use karl_bench::workloads::{build_type3, build_type2, KernelFamily};
use karl_bench::{throughput, Config};
use karl_core::{AnyEvaluator, BoundMethod, IndexKind, Query, Scan};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ijcnn1".into());
    let t3 = std::env::args().nth(2).is_none_or(|s| s == "3");
    let cfg = Config::default();
    let w = if t3 {
        build_type3(&name, KernelFamily::Gaussian, &cfg)
    } else {
        build_type2(&name, KernelFamily::Gaussian, &cfg)
    };
    println!("{}: {} SVs, tau {:.4}", w.name, w.points.len(), w.tau);
    let scan = Scan::new(w.points.clone(), w.weights.clone(), w.kernel);
    let tp = throughput(&w.queries, |q| { std::hint::black_box(scan.tkaq(q, w.tau)); });
    println!("scan {tp:.0} q/s");
    for method in [BoundMethod::Sota, BoundMethod::Karl] {
        for cap in [20, 80, 320] {
            let e = AnyEvaluator::build(IndexKind::Kd, &w.points, &w.weights, w.kernel, method, cap);
            let mut iters = 0usize;
            for q in w.queries.iter() {
                iters += e.run_query(q, Query::Tkaq { tau: w.tau }, None).iterations;
            }
            let tp = throughput(&w.queries, |q| { std::hint::black_box(e.tkaq(q, w.tau)); });
            println!("{method:?} leaf {cap:>3}: {tp:>9.0} q/s ({:.1} iters/q)", iters as f64 / w.queries.len() as f64);
        }
    }
}
