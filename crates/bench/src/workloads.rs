//! Workload builders for the three weighting types of the paper.

use karl_core::{Kernel, Scan};
use karl_data::{by_name, normalize_symmetric, sample_queries, subsample, DatasetSpec};
use karl_geom::PointSet;
use karl_kde::Kde;
use karl_svm::{CSvc, OneClassSvm};

use crate::Config;

/// Which kernel family an SVM workload trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFamily {
    /// Gaussian `exp(−γ·dist²)`, γ = 1/d (LIBSVM default).
    Gaussian,
    /// Polynomial `(γ·q·p)³`, γ = 1/d, data in `[−1,1]^d` (Table X setup).
    Polynomial,
}

/// A ready-to-run kernel aggregation workload: the aggregation inputs plus
/// a query set and the experiment's threshold statistics.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset name this came from.
    pub name: &'static str,
    /// The aggregation point set `P` (raw data for Type I, support vectors
    /// for Types II/III).
    pub points: PointSet,
    /// Aggregation weights aligned with `points`.
    pub weights: Vec<f64>,
    /// Kernel function.
    pub kernel: Kernel,
    /// Query points.
    pub queries: PointSet,
    /// The experiment threshold: `μ` of `F` over the queries (Type I) or
    /// the trained `ρ` (Types II/III).
    pub tau: f64,
    /// Standard deviation of `F` over the queries (drives Figure 9's τ
    /// sweep); zero for SVM workloads where it is unused.
    pub sigma: f64,
}

/// Builds the Type I (KDE) workload for a registry dataset: Scott's-rule γ,
/// uniform weights `1/n`, `τ = μ` over the sampled queries.
///
/// # Panics
/// Panics if `name` is not in the registry.
pub fn build_type1(name: &str, cfg: &Config) -> Workload {
    let spec = must_spec(name);
    let n = cfg.dataset_size(spec.n_raw);
    let ds = spec.generate_n(n);
    build_type1_from_points(spec.name, ds.points, cfg)
}

/// Builds a Type I workload over an explicit point set (used by the size
/// and dimensionality sweeps of Figures 11–12).
pub fn build_type1_from_points(name: &'static str, points: PointSet, cfg: &Config) -> Workload {
    let kde = Kde::fit(points.clone());
    let weights = vec![kde.weight(); points.len()];
    let kernel = Kernel::gaussian(kde.gamma());
    let queries = sample_queries(&points, cfg.queries, 0xA11CE);
    let scan = Scan::new(points.clone(), weights.clone(), kernel);
    let exact: Vec<f64> = queries.iter().map(|q| scan.aggregate(q)).collect();
    let mu = exact.iter().sum::<f64>() / exact.len() as f64;
    let sigma =
        (exact.iter().map(|f| (f - mu) * (f - mu)).sum::<f64>() / exact.len() as f64).sqrt();
    Workload {
        name,
        points,
        weights,
        kernel,
        queries,
        tau: mu,
        sigma,
    }
}

/// Builds the Type II (1-class SVM) workload: trains a ν-SVM (ν from the
/// registry, γ = 1/d as in LIBSVM) on a capped subsample, aggregates over
/// the support vectors, threshold `τ = ρ`.
///
/// # Panics
/// Panics if `name` is not a registry dataset.
pub fn build_type2(name: &str, family: KernelFamily, cfg: &Config) -> Workload {
    build_type2_with_nu(name, family, cfg, None)
}

/// [`build_type2`] with an explicit ν (used by experiments that target a
/// specific support-vector count, e.g. matching the paper's scaled
/// `n_model`; `None` uses the registry's suggestion).
///
/// # Panics
/// Panics if `name` is not a registry dataset.
pub fn build_type2_with_nu(
    name: &str,
    family: KernelFamily,
    cfg: &Config,
    nu: Option<f64>,
) -> Workload {
    let spec = must_spec(name);
    let n = cfg.dataset_size(spec.n_raw);
    let ds = spec.generate_n(n);
    let data = match family {
        KernelFamily::Gaussian => ds.points,
        KernelFamily::Polynomial => normalize_symmetric(&ds.points),
    };
    let kernel = kernel_for(family, data.dims());
    let train = subsample(&data, cfg.train_cap, 0x7EA);
    let model = OneClassSvm::new(nu.unwrap_or(spec.suggested_nu), kernel).train(&train);
    let queries = sample_queries(&data, cfg.queries, 0xB0B);
    Workload {
        name: spec.name,
        points: model.support().clone(),
        weights: model.weights().to_vec(),
        kernel,
        queries,
        tau: model.threshold(),
        sigma: 0.0,
    }
}

/// Builds the Type III (2-class SVM) workload: trains a C-SVC on a capped
/// subsample, aggregates over the signed support vectors, threshold
/// `τ = ρ`.
///
/// # Panics
/// Panics if `name` is not a registry dataset or carries no labels.
pub fn build_type3(name: &str, family: KernelFamily, cfg: &Config) -> Workload {
    let spec = must_spec(name);
    let n = cfg.dataset_size(spec.n_raw);
    let ds = spec.generate_n(n);
    let labels = ds.labels.expect("Type III needs a 2-class dataset");
    let data = match family {
        KernelFamily::Gaussian => ds.points,
        KernelFamily::Polynomial => normalize_symmetric(&ds.points),
    };
    let kernel = kernel_for(family, data.dims());
    // Subsample points and labels together for training.
    let train_n = cfg.train_cap.min(data.len());
    let idx: Vec<usize> = pick_indices(data.len(), train_n, 0x5EED);
    let train_x = data.select(&idx);
    let train_y: Vec<f64> = idx.iter().map(|&i| labels[i]).collect();
    let model = CSvc::new(1.0, kernel).train(&train_x, &train_y);
    let queries = sample_queries(&data, cfg.queries, 0xC0DE);
    Workload {
        name: spec.name,
        points: model.support().clone(),
        weights: model.weights().to_vec(),
        kernel,
        queries,
        tau: model.threshold(),
        sigma: 0.0,
    }
}

fn kernel_for(family: KernelFamily, dims: usize) -> Kernel {
    let gamma = 1.0 / dims as f64;
    match family {
        KernelFamily::Gaussian => Kernel::gaussian(gamma),
        KernelFamily::Polynomial => Kernel::polynomial(gamma, 0.0, 3),
    }
}

fn must_spec(name: &str) -> DatasetSpec {
    by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"))
}

fn pick_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    use karl_testkit::rng::seq::SliceRandom;
    use karl_testkit::rng::SeedableRng;
    let mut rng = karl_testkit::rng::StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    let (chosen, _) = idx.partial_shuffle(&mut rng, k.min(n));
    chosen.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: 1e-9, // clamps to the 2 000-point floor
            queries: 20,
            train_cap: 300,
        }
    }

    #[test]
    fn type1_workload_has_mean_threshold() {
        let w = build_type1("home", &tiny_cfg());
        assert_eq!(w.points.len(), 2_000);
        assert_eq!(w.queries.len(), 20);
        assert!(w.tau > 0.0);
        assert!(w.sigma >= 0.0);
        assert!(w.weights.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn type2_workload_is_positive_weighted() {
        let w = build_type2("nsl-kdd", KernelFamily::Gaussian, &tiny_cfg());
        assert!(w.weights.iter().all(|&x| x > 0.0), "Type II weights");
        assert!(w.points.len() <= 300, "support ⊆ training subsample");
    }

    #[test]
    fn type3_workload_mixes_signs() {
        let w = build_type3("ijcnn1", KernelFamily::Gaussian, &tiny_cfg());
        assert!(w.weights.iter().any(|&x| x > 0.0));
        assert!(w.weights.iter().any(|&x| x < 0.0));
    }

    #[test]
    fn polynomial_family_builds_polynomial_kernel() {
        let w = build_type3("ijcnn1", KernelFamily::Polynomial, &tiny_cfg());
        assert!(matches!(w.kernel, Kernel::Polynomial { degree: 3, .. }));
    }
}
