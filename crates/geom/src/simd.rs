//! Runtime-dispatched explicit SIMD kernels with a bitwise determinism
//! contract.
//!
//! Every hot reduction in the workspace — `dist²`/`dot`/`norm²`, the fused
//! per-node probes, the dual-tree pair kernels, and the build-time weighted
//! sums and corner min/max sweeps — runs through this module. Each kernel
//! has exactly **one** generic body written over a 4-lane abstraction
//! ([`Lanes`]) and two backends:
//!
//! * **scalar** — `[f64; 4]`, applying every lane operation element by
//!   element in lane order, and
//! * **avx2** — `std::arch` `__m256d` intrinsics (x86-64 only), one vector
//!   instruction per lane operation.
//!
//! **Determinism contract.** The 4-wide blocked-accumulator order
//! established by `dist`/`fused` is canonical: lane `k` sums the terms at
//! coordinates `k, k+4, k+8, …` and the horizontal reduction is always the
//! scalar `(acc0+acc1) + (acc2+acc3) + tail`, with the tail coordinates
//! (`d % 4`) handled by shared scalar code. The SIMD lanes map 1:1 onto
//! those four accumulators, and **no FMA contraction is used** — every
//! vector operation is the same IEEE-754 add/sub/mul/div the scalar lane
//! performs, so the two backends produce bitwise-identical results for
//! finite inputs (the validated entry points upstream reject non-finite
//! data). `min`/`max` follow the SSE/AVX selection rule
//! `a OP b ? a : b` (second operand on ties and NaN) in *both* backends;
//! the rule differs from `f64::min`/`f64::max` only on signed zeros and
//! NaNs, neither of which can change any accumulated sum.
//!
//! **Dispatch policy.** The backend is resolved once per process from the
//! `KARL_SIMD` environment variable (`auto`, `avx2` or `scalar`; `auto`
//! and unset pick the best ISA [`is_x86_feature_detected!`] reports) and
//! cached in an atomic; [`set_backend`] overrides it (the CLI `--simd`
//! flag). Requesting `avx2` on hardware without it silently falls back to
//! scalar — the results are bitwise identical either way, so the override
//! can never change an answer, only speed.
//!
//! **Safety.** All `unsafe` in the vector path lives in this module. The
//! only obligation the intrinsic calls carry is "AVX2 is available at
//! runtime", and that is guaranteed by construction: [`SimdBackend`] is
//! opaque, and the only way to obtain its avx2 value is through feature
//! detection. Entry points are safe and validate slice lengths before any
//! vector load; loads/stores are unaligned (`loadu`/`storeu`), so no
//! alignment precondition exists (64-byte-aligned [`crate::buf`] storage
//! merely makes them fast).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::fused::{
    pair_ip_max_term, pair_ip_min_term, pair_max_term, pair_min_term, quad_max_term,
    quad_min_term, rect_ip_max_term, rect_ip_min_term, rect_max_term, rect_min_term,
    BallQueryNode, RectQueryNode,
};

/// Name of the environment variable that selects the SIMD backend
/// (`auto` | `avx2` | `scalar`). Read once, at first dispatch.
pub const KARL_SIMD_ENV: &str = "KARL_SIMD";

const KIND_UNRESOLVED: u8 = 0;
const KIND_SCALAR: u8 = 1;
const KIND_AVX2: u8 = 2;

/// A witness for a usable SIMD backend.
///
/// The type is opaque on purpose: the avx2 value can only be obtained when
/// `is_x86_feature_detected!("avx2")` holds, so holding one licenses the
/// vector entry points to execute AVX2 instructions. Backends are
/// interchangeable by the determinism contract — swapping one for another
/// never changes a result bit, only throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdBackend(u8);

impl SimdBackend {
    /// The portable scalar backend (always available).
    #[inline]
    pub const fn scalar() -> Self {
        SimdBackend(KIND_SCALAR)
    }

    /// The AVX2 backend, if the running CPU supports it.
    #[inline]
    pub fn avx2() -> Option<Self> {
        if avx2_available() {
            Some(SimdBackend(KIND_AVX2))
        } else {
            None
        }
    }

    /// The best backend the running CPU supports.
    #[inline]
    pub fn detect() -> Self {
        Self::avx2().unwrap_or_else(Self::scalar)
    }

    /// Stable lowercase name (`"avx2"` / `"scalar"`), used by `--stats`
    /// output, `index info` and the bench JSON ISA tag.
    #[inline]
    pub fn name(self) -> &'static str {
        match self.0 {
            KIND_AVX2 => "avx2",
            _ => "scalar",
        }
    }

    /// Whether this backend issues vector instructions.
    #[inline]
    pub fn is_vector(self) -> bool {
        self.0 == KIND_AVX2
    }
}

#[inline]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// A requested backend policy (`KARL_SIMD` / `--simd`), prior to feature
/// detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdChoice {
    /// Pick the best backend the CPU supports (the default).
    Auto,
    /// Request AVX2; falls back to scalar when undetected (bitwise
    /// identical either way).
    Avx2,
    /// Force the portable scalar backend.
    Scalar,
}

impl SimdChoice {
    /// Parses `"auto"` / `"avx2"` / `"scalar"` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("auto") {
            Some(SimdChoice::Auto)
        } else if s.eq_ignore_ascii_case("avx2") {
            Some(SimdChoice::Avx2)
        } else if s.eq_ignore_ascii_case("scalar") {
            Some(SimdChoice::Scalar)
        } else {
            None
        }
    }

    /// Resolves the policy against the running CPU.
    pub fn resolve(self) -> SimdBackend {
        match self {
            SimdChoice::Auto | SimdChoice::Avx2 => match self {
                SimdChoice::Scalar => unreachable!(),
                SimdChoice::Auto => SimdBackend::detect(),
                SimdChoice::Avx2 => SimdBackend::avx2().unwrap_or_else(SimdBackend::scalar),
            },
            SimdChoice::Scalar => SimdBackend::scalar(),
        }
    }
}

/// Process-global active backend; `KIND_UNRESOLVED` until first use.
static ACTIVE: AtomicU8 = AtomicU8::new(KIND_UNRESOLVED);

/// The process-global active backend, resolving it on first use from
/// `KARL_SIMD` (unset or invalid values mean [`SimdChoice::Auto`]).
#[inline]
pub fn backend() -> SimdBackend {
    match ACTIVE.load(Ordering::Relaxed) {
        KIND_SCALAR => SimdBackend(KIND_SCALAR),
        KIND_AVX2 => SimdBackend(KIND_AVX2),
        _ => init_backend(),
    }
}

#[cold]
fn init_backend() -> SimdBackend {
    let choice = std::env::var(KARL_SIMD_ENV)
        .ok()
        .and_then(|s| SimdChoice::parse(&s))
        .unwrap_or(SimdChoice::Auto);
    set_backend(choice)
}

/// Overrides the process-global backend (the CLI `--simd` flag). Returns
/// the backend the choice resolved to. Safe at any time: backends are
/// bitwise interchangeable, so in-flight work is unaffected beyond speed.
pub fn set_backend(choice: SimdChoice) -> SimdBackend {
    let be = choice.resolve();
    ACTIVE.store(be.0, Ordering::Relaxed);
    be
}

/// Name of the process-global active backend (resolving it if needed).
#[inline]
pub fn backend_name() -> &'static str {
    backend().name()
}

// ---------------------------------------------------------------------------
// The 4-lane abstraction
// ---------------------------------------------------------------------------

/// Canonical scalar `min`: the SSE/AVX selection rule `a < b ? a : b`
/// (returns `b` on ties and NaN). Used by the scalar backend and the
/// shared tail code so both backends follow one rule.
#[inline(always)]
fn fmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Canonical scalar `max`: `a > b ? a : b` (returns `b` on ties and NaN).
#[inline(always)]
fn fmax(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// Four `f64` lanes mapping 1:1 onto the canonical blocked accumulators.
///
/// Every method is one IEEE-754 operation per lane, performed in lane
/// order by the scalar backend and as one vector instruction by the AVX2
/// backend — that is the whole bitwise-equality argument. Comparison masks
/// are represented as lanes whose bits are all-ones (true) or all-zeros
/// (false); [`Lanes::select`] keys on the sign bit, mirroring `blendv`.
trait Lanes: Copy {
    /// All four lanes set to `v`.
    fn splat(v: f64) -> Self;
    /// Loads lanes from `s[i..i + 4]` (panics if out of bounds).
    fn load(s: &[f64], i: usize) -> Self;
    /// Stores lanes to `s[i..i + 4]` (panics if out of bounds).
    fn store(self, s: &mut [f64], i: usize);
    /// Lanewise `a + b`.
    fn add(self, o: Self) -> Self;
    /// Lanewise `a - b`.
    fn sub(self, o: Self) -> Self;
    /// Lanewise `a * b`.
    fn mul(self, o: Self) -> Self;
    /// Lanewise `a / b`.
    fn div(self, o: Self) -> Self;
    /// Lanewise canonical min (`a < b ? a : b`).
    fn min(self, o: Self) -> Self;
    /// Lanewise canonical max (`a > b ? a : b`).
    fn max(self, o: Self) -> Self;
    /// Lanewise `|a|` (clears the sign bit).
    fn abs(self) -> Self;
    /// Lanewise `-a` (flips the sign bit).
    fn neg(self) -> Self;
    /// Lanewise ordered `a > b` mask (all-ones / all-zeros bits).
    fn gt(self, o: Self) -> Self;
    /// Lanewise bitwise AND (mask conjunction).
    fn and(self, o: Self) -> Self;
    /// Lanewise `mask-sign-bit ? t : f` (the `blendv` rule).
    fn select(mask: Self, t: Self, f: Self) -> Self;
    /// The four lane values, in lane order.
    fn to_array(self) -> [f64; 4];

    /// The canonical horizontal reduction `(l0+l1) + (l2+l3) + tail`,
    /// always performed in scalar arithmetic.
    #[inline(always)]
    fn hsum(self, tail: f64) -> f64 {
        let l = self.to_array();
        (l[0] + l[1]) + (l[2] + l[3]) + tail
    }
}

/// The portable backend: four scalars, operated on in lane order.
#[derive(Clone, Copy)]
struct ScalarLanes([f64; 4]);

macro_rules! scalar_lanewise {
    ($a:expr, $b:expr, $f:expr) => {{
        let (a, b) = (($a).0, ($b).0);
        ScalarLanes([
            $f(a[0], b[0]),
            $f(a[1], b[1]),
            $f(a[2], b[2]),
            $f(a[3], b[3]),
        ])
    }};
}

impl Lanes for ScalarLanes {
    #[inline(always)]
    fn splat(v: f64) -> Self {
        ScalarLanes([v; 4])
    }

    #[inline(always)]
    fn load(s: &[f64], i: usize) -> Self {
        let w = &s[i..i + 4];
        ScalarLanes([w[0], w[1], w[2], w[3]])
    }

    #[inline(always)]
    fn store(self, s: &mut [f64], i: usize) {
        s[i..i + 4].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        scalar_lanewise!(self, o, |a: f64, b: f64| a + b)
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        scalar_lanewise!(self, o, |a: f64, b: f64| a - b)
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        scalar_lanewise!(self, o, |a: f64, b: f64| a * b)
    }

    #[inline(always)]
    fn div(self, o: Self) -> Self {
        scalar_lanewise!(self, o, |a: f64, b: f64| a / b)
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        scalar_lanewise!(self, o, fmin)
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        scalar_lanewise!(self, o, fmax)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        let a = self.0;
        ScalarLanes([a[0].abs(), a[1].abs(), a[2].abs(), a[3].abs()])
    }

    #[inline(always)]
    fn neg(self) -> Self {
        let a = self.0;
        ScalarLanes([-a[0], -a[1], -a[2], -a[3]])
    }

    #[inline(always)]
    fn gt(self, o: Self) -> Self {
        scalar_lanewise!(self, o, |a: f64, b: f64| if a > b {
            f64::from_bits(u64::MAX)
        } else {
            f64::from_bits(0)
        })
    }

    #[inline(always)]
    fn and(self, o: Self) -> Self {
        scalar_lanewise!(self, o, |a: f64, b: f64| f64::from_bits(
            a.to_bits() & b.to_bits()
        ))
    }

    #[inline(always)]
    fn select(mask: Self, t: Self, f: Self) -> Self {
        let (m, t, f) = (mask.0, t.0, f.0);
        let pick = |k: usize| {
            if m[k].to_bits() >> 63 != 0 {
                t[k]
            } else {
                f[k]
            }
        };
        ScalarLanes([pick(0), pick(1), pick(2), pick(3)])
    }

    #[inline(always)]
    fn to_array(self) -> [f64; 4] {
        self.0
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend (x86-64 only)
// ---------------------------------------------------------------------------
//
// SAFETY ARGUMENT (applies to every `unsafe` block in this module): the
// intrinsics used here have no memory preconditions beyond what the
// bounds-checked subslices establish (`loadu`/`storeu` are unaligned),
// so the only remaining obligation is that the CPU supports AVX2. The
// `Avx2Lanes` type is only ever named by the `*_avx2` wrapper functions
// below, and those are only called by the `_with` dispatchers after
// matching on an avx2 `SimdBackend` witness — which is constructible
// solely via `is_x86_feature_detected!("avx2")`.

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_and_pd, _mm256_andnot_pd, _mm256_blendv_pd, _mm256_cmp_pd,
        _mm256_div_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd, _CMP_GT_OQ,
    };

    /// The AVX2 backend: one `__m256d` per accumulator, one vector
    /// instruction per lane operation. No FMA anywhere — `mul` and `add`
    /// stay separate so every lane matches the scalar backend bitwise.
    #[derive(Clone, Copy)]
    pub(super) struct Avx2Lanes(__m256d);

    impl Lanes for Avx2Lanes {
        #[inline(always)]
        fn splat(v: f64) -> Self {
            // SAFETY: see the module safety argument.
            Avx2Lanes(unsafe { _mm256_set1_pd(v) })
        }

        #[inline(always)]
        fn load(s: &[f64], i: usize) -> Self {
            let w = &s[i..i + 4];
            // SAFETY: `w` holds exactly 4 elements; loadu is unaligned.
            Avx2Lanes(unsafe { _mm256_loadu_pd(w.as_ptr()) })
        }

        #[inline(always)]
        fn store(self, s: &mut [f64], i: usize) {
            let w = &mut s[i..i + 4];
            // SAFETY: `w` holds exactly 4 elements; storeu is unaligned.
            unsafe { _mm256_storeu_pd(w.as_mut_ptr(), self.0) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            // SAFETY: see the module safety argument.
            Avx2Lanes(unsafe { _mm256_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            // SAFETY: see the module safety argument.
            Avx2Lanes(unsafe { _mm256_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            // SAFETY: see the module safety argument.
            Avx2Lanes(unsafe { _mm256_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            // SAFETY: see the module safety argument.
            Avx2Lanes(unsafe { _mm256_div_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn min(self, o: Self) -> Self {
            // SAFETY: see the module safety argument. `minpd` is the
            // canonical `a < b ? a : b`.
            Avx2Lanes(unsafe { _mm256_min_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn max(self, o: Self) -> Self {
            // SAFETY: see the module safety argument. `maxpd` is the
            // canonical `a > b ? a : b`.
            Avx2Lanes(unsafe { _mm256_max_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn abs(self) -> Self {
            // SAFETY: see the module safety argument.
            let sign = unsafe { _mm256_set1_pd(-0.0) };
            // SAFETY: see the module safety argument. andnot with -0.0
            // clears the sign bit, exactly like `f64::abs`.
            Avx2Lanes(unsafe { _mm256_andnot_pd(sign, self.0) })
        }

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: see the module safety argument.
            let sign = unsafe { _mm256_set1_pd(-0.0) };
            // SAFETY: see the module safety argument. xor with -0.0 flips
            // the sign bit, exactly like scalar negation.
            Avx2Lanes(unsafe { _mm256_xor_pd(self.0, sign) })
        }

        #[inline(always)]
        fn gt(self, o: Self) -> Self {
            // SAFETY: see the module safety argument. Ordered-quiet `>`,
            // false on NaN, like the scalar `>`.
            Avx2Lanes(unsafe { _mm256_cmp_pd::<_CMP_GT_OQ>(self.0, o.0) })
        }

        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: see the module safety argument.
            Avx2Lanes(unsafe { _mm256_and_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn select(mask: Self, t: Self, f: Self) -> Self {
            // SAFETY: see the module safety argument. blendv picks `t`
            // where the mask sign bit is set.
            Avx2Lanes(unsafe { _mm256_blendv_pd(f.0, t.0, mask.0) })
        }

        #[inline(always)]
        fn to_array(self) -> [f64; 4] {
            let mut out = [0.0; 4];
            // SAFETY: `out` holds exactly 4 elements; storeu is unaligned.
            unsafe { _mm256_storeu_pd(out.as_mut_ptr(), self.0) };
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Generic kernel bodies (written once, monomorphized per backend)
// ---------------------------------------------------------------------------

#[inline(always)]
fn dist2_body<L: Lanes>(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let blocks = n - n % 4;
    let mut acc = L::splat(0.0);
    let mut j = 0;
    while j < blocks {
        let d = L::load(a, j).sub(L::load(b, j));
        acc = acc.add(d.mul(d));
        j += 4;
    }
    let mut tail = 0.0;
    while j < n {
        let d = a[j] - b[j];
        tail += d * d;
        j += 1;
    }
    acc.hsum(tail)
}

#[inline(always)]
fn dot_body<L: Lanes>(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let blocks = n - n % 4;
    let mut acc = L::splat(0.0);
    let mut j = 0;
    while j < blocks {
        acc = acc.add(L::load(a, j).mul(L::load(b, j)));
        j += 4;
    }
    let mut tail = 0.0;
    while j < n {
        tail += a[j] * b[j];
        j += 1;
    }
    acc.hsum(tail)
}

#[inline(always)]
fn norm2_body<L: Lanes>(a: &[f64]) -> f64 {
    let n = a.len();
    let blocks = n - n % 4;
    let mut acc = L::splat(0.0);
    let mut j = 0;
    while j < blocks {
        let x = L::load(a, j);
        acc = acc.add(x.mul(x));
        j += 4;
    }
    let mut tail = 0.0;
    while j < n {
        tail += a[j] * a[j];
        j += 1;
    }
    acc.hsum(tail)
}

#[inline(always)]
fn rect_dist_body<const AGG: bool, L: Lanes>(
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
) -> (f64, f64, f64) {
    let d = q.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let (mut mn, mut mx, mut qa) = (zero, zero, zero);
    let mut j = 0;
    while j < blocks {
        let x = L::load(q, j);
        let l = L::load(lo, j);
        let h = L::load(hi, j);
        // rect_min_term as a branch-free max chain: identical value for
        // every finite input (signed-zero ties square away).
        let gap = l.sub(x).max(x.sub(h)).max(zero);
        mn = mn.add(gap.mul(gap));
        let far = x.sub(l).abs().max(h.sub(x).abs());
        mx = mx.add(far.mul(far));
        if AGG {
            qa = qa.add(x.mul(L::load(a, j)));
        }
        j += 4;
    }
    let (mut mn_t, mut mx_t, mut qa_t) = (0.0, 0.0, 0.0);
    while j < d {
        let (x, l, h) = (q[j], lo[j], hi[j]);
        mn_t += rect_min_term(x, l, h);
        mx_t += rect_max_term(x, l, h);
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (
        mn.hsum(mn_t),
        mx.hsum(mx_t),
        if AGG { qa.hsum(qa_t) } else { 0.0 },
    )
}

#[inline(always)]
fn rect_ip_body<const AGG: bool, L: Lanes>(
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
) -> (f64, f64, f64) {
    let d = q.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let (mut mn, mut mx, mut qa) = (zero, zero, zero);
    let mut j = 0;
    while j < blocks {
        let x = L::load(q, j);
        let pl = x.mul(L::load(lo, j));
        let ph = x.mul(L::load(hi, j));
        mn = mn.add(pl.min(ph));
        mx = mx.add(pl.max(ph));
        if AGG {
            qa = qa.add(x.mul(L::load(a, j)));
        }
        j += 4;
    }
    let (mut mn_t, mut mx_t, mut qa_t) = (0.0, 0.0, 0.0);
    while j < d {
        let (x, l, h) = (q[j], lo[j], hi[j]);
        mn_t += rect_ip_min_term(x, l, h);
        mx_t += rect_ip_max_term(x, l, h);
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (
        mn.hsum(mn_t),
        mx.hsum(mx_t),
        if AGG { qa.hsum(qa_t) } else { 0.0 },
    )
}

#[inline(always)]
fn ball_dist_body<const AGG: bool, L: Lanes>(
    q: &[f64],
    center: &[f64],
    a: &[f64],
) -> (f64, f64) {
    let d = q.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let (mut ds, mut qa) = (zero, zero);
    let mut j = 0;
    while j < blocks {
        let x = L::load(q, j);
        let dd = x.sub(L::load(center, j));
        ds = ds.add(dd.mul(dd));
        if AGG {
            qa = qa.add(x.mul(L::load(a, j)));
        }
        j += 4;
    }
    let (mut ds_t, mut qa_t) = (0.0, 0.0);
    while j < d {
        let x = q[j];
        let dd = x - center[j];
        ds_t += dd * dd;
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (ds.hsum(ds_t), if AGG { qa.hsum(qa_t) } else { 0.0 })
}

#[inline(always)]
fn ball_ip_body<const AGG: bool, L: Lanes>(q: &[f64], center: &[f64], a: &[f64]) -> (f64, f64) {
    let d = q.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let (mut qc, mut qa) = (zero, zero);
    let mut j = 0;
    while j < blocks {
        let x = L::load(q, j);
        qc = qc.add(x.mul(L::load(center, j)));
        if AGG {
            qa = qa.add(x.mul(L::load(a, j)));
        }
        j += 4;
    }
    let (mut qc_t, mut qa_t) = (0.0, 0.0);
    while j < d {
        let x = q[j];
        qc_t += x * center[j];
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (qc.hsum(qc_t), if AGG { qa.hsum(qa_t) } else { 0.0 })
}

#[allow(clippy::too_many_arguments)] // mirrors the fused pair probe, flat slices beat a struct
#[inline(always)]
fn rect_rect_dist_body<const AGG: bool, L: Lanes>(
    qlo: &[f64],
    qhi: &[f64],
    qlo2: &[f64],
    qhi2: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    w: f64,
) -> (f64, f64, f64, f64) {
    let d = qlo.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let wv = L::splat(w);
    let two = L::splat(2.0);
    let (mut mn, mut mx, mut gn, mut gx) = (zero, zero, zero, zero);
    let mut j = 0;
    while j < blocks {
        let ql = L::load(qlo, j);
        let qh = L::load(qhi, j);
        let l = L::load(lo, j);
        let h = L::load(hi, j);
        let gap = l.sub(qh).max(ql.sub(h)).max(zero);
        mn = mn.add(gap.mul(gap));
        let far = h.sub(ql).max(qh.sub(l));
        mx = mx.add(far.mul(far));
        if AGG {
            let ql2 = L::load(qlo2, j);
            let qh2 = L::load(qhi2, j);
            let av = L::load(a, j);
            // g(t) = w·t² − 2·a·t at both endpoints, exactly the scalar
            // operation order of `quad_min_term`/`quad_max_term`.
            let ta = two.mul(av);
            let gl = wv.mul(ql2).sub(ta.mul(ql));
            let gh = wv.mul(qh2).sub(ta.mul(qh));
            let m = gl.min(gh);
            let v = av.div(wv);
            let vert = av.mul(av).neg().div(wv);
            let inside = v.gt(ql).and(qh.gt(v));
            gn = gn.add(L::select(inside, m.min(vert), m));
            gx = gx.add(gl.max(gh));
        }
        j += 4;
    }
    let (mut mn_t, mut mx_t, mut gn_t, mut gx_t) = (0.0, 0.0, 0.0, 0.0);
    while j < d {
        let (ql, qh, l, h) = (qlo[j], qhi[j], lo[j], hi[j]);
        mn_t += pair_min_term(ql, qh, l, h);
        mx_t += pair_max_term(ql, qh, l, h);
        if AGG {
            gn_t += quad_min_term(ql, qh, qlo2[j], qhi2[j], a[j], w);
            gx_t += quad_max_term(ql, qh, qlo2[j], qhi2[j], a[j], w);
        }
        j += 1;
    }
    (
        mn.hsum(mn_t),
        mx.hsum(mx_t),
        if AGG { gn.hsum(gn_t) } else { 0.0 },
        if AGG { gx.hsum(gx_t) } else { 0.0 },
    )
}

#[inline(always)]
fn rect_rect_ip_body<const AGG: bool, L: Lanes>(
    qlo: &[f64],
    qhi: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
) -> (f64, f64, f64, f64) {
    let d = qlo.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let (mut mn, mut mx, mut an, mut ax) = (zero, zero, zero, zero);
    let mut j = 0;
    while j < blocks {
        let ql = L::load(qlo, j);
        let qh = L::load(qhi, j);
        let l = L::load(lo, j);
        let h = L::load(hi, j);
        let p1 = ql.mul(l);
        let p2 = ql.mul(h);
        let p3 = qh.mul(l);
        let p4 = qh.mul(h);
        mn = mn.add(p1.min(p2).min(p3.min(p4)));
        mx = mx.add(p1.max(p2).max(p3.max(p4)));
        if AGG {
            let av = L::load(a, j);
            let pa = ql.mul(av);
            let pb = qh.mul(av);
            an = an.add(pa.min(pb));
            ax = ax.add(pa.max(pb));
        }
        j += 4;
    }
    let (mut mn_t, mut mx_t, mut an_t, mut ax_t) = (0.0, 0.0, 0.0, 0.0);
    while j < d {
        let (ql, qh, l, h) = (qlo[j], qhi[j], lo[j], hi[j]);
        mn_t += pair_ip_min_term(ql, qh, l, h);
        mx_t += pair_ip_max_term(ql, qh, l, h);
        if AGG {
            let aj = a[j];
            an_t += fmin(ql * aj, qh * aj);
            ax_t += fmax(ql * aj, qh * aj);
        }
        j += 1;
    }
    (
        mn.hsum(mn_t),
        mx.hsum(mx_t),
        if AGG { an.hsum(an_t) } else { 0.0 },
        if AGG { ax.hsum(ax_t) } else { 0.0 },
    )
}

#[inline(always)]
fn ball_ball_dist_body<const AGG: bool, L: Lanes>(
    q: &[f64],
    center: &[f64],
    a: &[f64],
) -> (f64, f64, f64) {
    let d = q.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let (mut ds, mut qa, mut aa) = (zero, zero, zero);
    let mut j = 0;
    while j < blocks {
        let x = L::load(q, j);
        let dd = x.sub(L::load(center, j));
        ds = ds.add(dd.mul(dd));
        if AGG {
            let av = L::load(a, j);
            qa = qa.add(x.mul(av));
            aa = aa.add(av.mul(av));
        }
        j += 4;
    }
    let (mut ds_t, mut qa_t, mut aa_t) = (0.0, 0.0, 0.0);
    while j < d {
        let x = q[j];
        let dd = x - center[j];
        ds_t += dd * dd;
        if AGG {
            qa_t += x * a[j];
            aa_t += a[j] * a[j];
        }
        j += 1;
    }
    (
        ds.hsum(ds_t),
        if AGG { qa.hsum(qa_t) } else { 0.0 },
        if AGG { aa.hsum(aa_t) } else { 0.0 },
    )
}

#[inline(always)]
fn ball_ball_ip_body<const AGG: bool, L: Lanes>(
    q: &[f64],
    center: &[f64],
    a: &[f64],
) -> (f64, f64, f64, f64) {
    let d = q.len();
    let blocks = d - d % 4;
    let zero = L::splat(0.0);
    let (mut qc, mut cc, mut qa, mut aa) = (zero, zero, zero, zero);
    let mut j = 0;
    while j < blocks {
        let x = L::load(q, j);
        let c = L::load(center, j);
        qc = qc.add(x.mul(c));
        cc = cc.add(c.mul(c));
        if AGG {
            let av = L::load(a, j);
            qa = qa.add(x.mul(av));
            aa = aa.add(av.mul(av));
        }
        j += 4;
    }
    let (mut qc_t, mut cc_t, mut qa_t, mut aa_t) = (0.0, 0.0, 0.0, 0.0);
    while j < d {
        let (x, c) = (q[j], center[j]);
        qc_t += x * c;
        cc_t += c * c;
        if AGG {
            qa_t += x * a[j];
            aa_t += a[j] * a[j];
        }
        j += 1;
    }
    (
        qc.hsum(qc_t),
        cc.hsum(cc_t),
        if AGG { qa.hsum(qa_t) } else { 0.0 },
        if AGG { aa.hsum(aa_t) } else { 0.0 },
    )
}

#[inline(always)]
fn axpy_body<L: Lanes>(acc: &mut [f64], w: f64, p: &[f64]) {
    let n = acc.len().min(p.len());
    let blocks = n - n % 4;
    let wv = L::splat(w);
    let mut j = 0;
    while j < blocks {
        L::load(acc, j).add(wv.mul(L::load(p, j))).store(acc, j);
        j += 4;
    }
    while j < n {
        acc[j] += w * p[j];
        j += 1;
    }
}

#[inline(always)]
fn min_max_body<L: Lanes>(lo: &mut [f64], hi: &mut [f64], p: &[f64]) {
    let n = lo.len().min(hi.len()).min(p.len());
    let blocks = n - n % 4;
    let mut j = 0;
    while j < blocks {
        let pv = L::load(p, j);
        L::load(lo, j).min(pv).store(lo, j);
        L::load(hi, j).max(pv).store(hi, j);
        j += 4;
    }
    while j < n {
        lo[j] = fmin(lo[j], p[j]);
        hi[j] = fmax(hi[j], p[j]);
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// AVX2 wrapper functions
// ---------------------------------------------------------------------------
//
// Each wrapper monomorphizes the generic body for `Avx2Lanes` under
// `#[target_feature(enable = "avx2")]`, so the whole body (including the
// scalar tail, which compiles to VEX scalar ops with identical IEEE
// semantics) is generated as AVX2 code. Calling one is unsafe-by-feature:
// the `_with` dispatchers below only do so behind an avx2 backend witness.

#[cfg(target_arch = "x86_64")]
mod avx2_entry {
    use super::x86::Avx2Lanes;
    use super::*;

    #[target_feature(enable = "avx2")]
    pub(super) fn dist2(a: &[f64], b: &[f64]) -> f64 {
        dist2_body::<Avx2Lanes>(a, b)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        dot_body::<Avx2Lanes>(a, b)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn norm2(a: &[f64]) -> f64 {
        norm2_body::<Avx2Lanes>(a)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn rect_dist<const AGG: bool>(
        q: &[f64],
        lo: &[f64],
        hi: &[f64],
        a: &[f64],
    ) -> (f64, f64, f64) {
        rect_dist_body::<AGG, Avx2Lanes>(q, lo, hi, a)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn rect_ip<const AGG: bool>(
        q: &[f64],
        lo: &[f64],
        hi: &[f64],
        a: &[f64],
    ) -> (f64, f64, f64) {
        rect_ip_body::<AGG, Avx2Lanes>(q, lo, hi, a)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn ball_dist<const AGG: bool>(q: &[f64], center: &[f64], a: &[f64]) -> (f64, f64) {
        ball_dist_body::<AGG, Avx2Lanes>(q, center, a)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn ball_ip<const AGG: bool>(q: &[f64], center: &[f64], a: &[f64]) -> (f64, f64) {
        ball_ip_body::<AGG, Avx2Lanes>(q, center, a)
    }

    #[allow(clippy::too_many_arguments)] // mirrors the generic body
    #[target_feature(enable = "avx2")]
    pub(super) fn rect_rect_dist<const AGG: bool>(
        qlo: &[f64],
        qhi: &[f64],
        qlo2: &[f64],
        qhi2: &[f64],
        lo: &[f64],
        hi: &[f64],
        a: &[f64],
        w: f64,
    ) -> (f64, f64, f64, f64) {
        rect_rect_dist_body::<AGG, Avx2Lanes>(qlo, qhi, qlo2, qhi2, lo, hi, a, w)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn rect_rect_ip<const AGG: bool>(
        qlo: &[f64],
        qhi: &[f64],
        lo: &[f64],
        hi: &[f64],
        a: &[f64],
    ) -> (f64, f64, f64, f64) {
        rect_rect_ip_body::<AGG, Avx2Lanes>(qlo, qhi, lo, hi, a)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn ball_ball_dist<const AGG: bool>(
        q: &[f64],
        center: &[f64],
        a: &[f64],
    ) -> (f64, f64, f64) {
        ball_ball_dist_body::<AGG, Avx2Lanes>(q, center, a)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn ball_ball_ip<const AGG: bool>(
        q: &[f64],
        center: &[f64],
        a: &[f64],
    ) -> (f64, f64, f64, f64) {
        ball_ball_ip_body::<AGG, Avx2Lanes>(q, center, a)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn axpy(acc: &mut [f64], w: f64, p: &[f64]) {
        axpy_body::<Avx2Lanes>(acc, w, p)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn min_max(lo: &mut [f64], hi: &mut [f64], p: &[f64]) {
        min_max_body::<Avx2Lanes>(lo, hi, p)
    }
}

// ---------------------------------------------------------------------------
// Safe, validated, explicit-backend entry points
// ---------------------------------------------------------------------------
//
// These are the module's public surface. The dispatched convenience
// wrappers live where they always did (`crate::dist`, `crate::fused`,
// `Rect`, …) and delegate here after resolving `backend()` once per call
// or once per frontier/build loop.

/// Squared Euclidean distance on the chosen backend. Reduces over
/// `min(a.len(), b.len())` coordinates (the historical `zip` semantics;
/// equal lengths are debug-asserted).
#[inline]
pub fn dist2_with(be: SimdBackend, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::dist2(a, b) },
        _ => dist2_body::<ScalarLanes>(a, b),
    }
}

/// Inner product on the chosen backend (same length semantics as
/// [`dist2_with`]).
#[inline]
pub fn dot_with(be: SimdBackend, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::dot(a, b) },
        _ => dot_body::<ScalarLanes>(a, b),
    }
}

/// Squared Euclidean norm on the chosen backend.
#[inline]
pub fn norm2_with(be: SimdBackend, a: &[f64]) -> f64 {
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::norm2(a) },
        _ => norm2_body::<ScalarLanes>(a),
    }
}

#[inline(always)]
fn check_probe(d: usize, lo: usize, hi: usize, agg: bool, a: usize) {
    assert!(
        lo >= d && hi >= d && (!agg || a >= d),
        "probe buffers shorter than the query dimensionality"
    );
}

/// Fused rectangle distance probe on the chosen backend; see
/// [`crate::fused::rect_dist`].
#[inline]
pub fn rect_dist_with<const AGG: bool>(
    be: SimdBackend,
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
) -> (f64, f64, f64) {
    check_probe(q.len(), lo.len(), hi.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::rect_dist::<AGG>(q, lo, hi, a) },
        _ => rect_dist_body::<AGG, ScalarLanes>(q, lo, hi, a),
    }
}

/// Fused rectangle inner-product probe on the chosen backend; see
/// [`crate::fused::rect_ip`].
#[inline]
pub fn rect_ip_with<const AGG: bool>(
    be: SimdBackend,
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
) -> (f64, f64, f64) {
    check_probe(q.len(), lo.len(), hi.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::rect_ip::<AGG>(q, lo, hi, a) },
        _ => rect_ip_body::<AGG, ScalarLanes>(q, lo, hi, a),
    }
}

/// Fused ball distance probe on the chosen backend; see
/// [`crate::fused::ball_dist`].
#[inline]
pub fn ball_dist_with<const AGG: bool>(
    be: SimdBackend,
    q: &[f64],
    center: &[f64],
    a: &[f64],
) -> (f64, f64) {
    check_probe(q.len(), center.len(), center.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::ball_dist::<AGG>(q, center, a) },
        _ => ball_dist_body::<AGG, ScalarLanes>(q, center, a),
    }
}

/// Fused ball inner-product probe on the chosen backend; see
/// [`crate::fused::ball_ip`].
#[inline]
pub fn ball_ip_with<const AGG: bool>(
    be: SimdBackend,
    q: &[f64],
    center: &[f64],
    a: &[f64],
) -> (f64, f64) {
    check_probe(q.len(), center.len(), center.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::ball_ip::<AGG>(q, center, a) },
        _ => ball_ip_body::<AGG, ScalarLanes>(q, center, a),
    }
}

/// Fused rectangle-vs-rectangle pair probe on the chosen backend; see
/// [`crate::fused::rect_rect_dist`].
#[inline]
pub fn rect_rect_dist_with<const AGG: bool>(
    be: SimdBackend,
    qnode: &RectQueryNode<'_>,
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    w: f64,
) -> (f64, f64, f64, f64) {
    let (qlo, qhi) = (qnode.lo(), qnode.hi());
    let (qlo2, qhi2) = (qnode.lo2(), qnode.hi2());
    check_probe(qlo.len(), lo.len(), hi.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe {
            avx2_entry::rect_rect_dist::<AGG>(qlo, qhi, qlo2, qhi2, lo, hi, a, w)
        },
        _ => rect_rect_dist_body::<AGG, ScalarLanes>(qlo, qhi, qlo2, qhi2, lo, hi, a, w),
    }
}

/// Fused rectangle-vs-rectangle inner-product pair probe on the chosen
/// backend; see [`crate::fused::rect_rect_ip`].
#[inline]
pub fn rect_rect_ip_with<const AGG: bool>(
    be: SimdBackend,
    qnode: &RectQueryNode<'_>,
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
) -> (f64, f64, f64, f64) {
    let (qlo, qhi) = (qnode.lo(), qnode.hi());
    check_probe(qlo.len(), lo.len(), hi.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::rect_rect_ip::<AGG>(qlo, qhi, lo, hi, a) },
        _ => rect_rect_ip_body::<AGG, ScalarLanes>(qlo, qhi, lo, hi, a),
    }
}

/// Fused ball-vs-ball pair probe on the chosen backend; see
/// [`crate::fused::ball_ball_dist`].
#[inline]
pub fn ball_ball_dist_with<const AGG: bool>(
    be: SimdBackend,
    qnode: &BallQueryNode<'_>,
    center: &[f64],
    a: &[f64],
) -> (f64, f64, f64) {
    let q = qnode.center();
    check_probe(q.len(), center.len(), center.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::ball_ball_dist::<AGG>(q, center, a) },
        _ => ball_ball_dist_body::<AGG, ScalarLanes>(q, center, a),
    }
}

/// Fused ball-vs-ball inner-product pair probe on the chosen backend; see
/// [`crate::fused::ball_ball_ip`].
#[inline]
pub fn ball_ball_ip_with<const AGG: bool>(
    be: SimdBackend,
    qnode: &BallQueryNode<'_>,
    center: &[f64],
    a: &[f64],
) -> (f64, f64, f64, f64) {
    let q = qnode.center();
    check_probe(q.len(), center.len(), center.len(), AGG, a.len());
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::ball_ball_ip::<AGG>(q, center, a) },
        _ => ball_ball_ip_body::<AGG, ScalarLanes>(q, center, a),
    }
}

/// Weighted accumulation `acc[j] += w · p[j]` over
/// `min(acc.len(), p.len())` coordinates on the chosen backend — the
/// build-time kernel behind the node aggregates `a = Σ wᵢ·pᵢ`.
/// Elementwise, so trivially bitwise identical across backends.
#[inline]
pub fn axpy_with(be: SimdBackend, acc: &mut [f64], w: f64, p: &[f64]) {
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::axpy(acc, w, p) },
        _ => axpy_body::<ScalarLanes>(acc, w, p),
    }
}

/// Elementwise running min/max update `lo[j] = min(lo[j], p[j])`,
/// `hi[j] = max(hi[j], p[j])` (canonical min/max semantics) on the chosen
/// backend — the build-time kernel behind the bounding-rectangle sweep.
#[inline]
pub fn min_max_update_with(be: SimdBackend, lo: &mut [f64], hi: &mut [f64], p: &[f64]) {
    match be.0 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an avx2 backend witness implies the feature is detected.
        KIND_AVX2 => unsafe { avx2_entry::min_max(lo, hi, p) },
        _ => min_max_body::<ScalarLanes>(lo, hi, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic quasi-random vectors (mixed signs, every tail
    /// length around the 4-wide blocking).
    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let lo: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 2.0 - 1.5).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + 2.0).collect();
        let a: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.31).tan().clamp(-4.0, 4.0))
            .collect();
        (q, lo, hi, a)
    }

    #[test]
    fn choice_parsing_and_resolution() {
        assert_eq!(SimdChoice::parse("auto"), Some(SimdChoice::Auto));
        assert_eq!(SimdChoice::parse("AVX2"), Some(SimdChoice::Avx2));
        assert_eq!(SimdChoice::parse("Scalar"), Some(SimdChoice::Scalar));
        assert_eq!(SimdChoice::parse("sse2"), None);
        assert_eq!(SimdChoice::parse(""), None);
        assert_eq!(SimdChoice::Scalar.resolve(), SimdBackend::scalar());
        assert_eq!(SimdChoice::Auto.resolve(), SimdBackend::detect());
        // Requesting avx2 resolves to avx2 where detected, scalar elsewhere.
        let forced = SimdChoice::Avx2.resolve();
        match SimdBackend::avx2() {
            Some(v) => assert_eq!(forced, v),
            None => assert_eq!(forced, SimdBackend::scalar()),
        }
        assert_eq!(SimdBackend::scalar().name(), "scalar");
        assert!(!SimdBackend::scalar().is_vector());
        if let Some(v) = SimdBackend::avx2() {
            assert_eq!(v.name(), "avx2");
            assert!(v.is_vector());
        }
    }

    #[test]
    fn set_backend_overrides_and_reports() {
        // Backends are bitwise interchangeable, so flipping the global in a
        // concurrently-running test process is benign; restore auto anyway.
        let forced = set_backend(SimdChoice::Scalar);
        assert_eq!(forced, SimdBackend::scalar());
        assert_eq!(backend(), SimdBackend::scalar());
        let auto = set_backend(SimdChoice::Auto);
        assert_eq!(auto, SimdBackend::detect());
        assert_eq!(backend_name(), SimdBackend::detect().name());
    }

    /// The historical blocked reference (chunks_exact(4) + remainder),
    /// pinned so the scalar backend can never drift from the canonical
    /// summation order.
    fn dist2_reference(a: &[f64], b: &[f64]) -> f64 {
        let ca = a.chunks_exact(4);
        let cb = b.chunks_exact(4);
        let (ra, rb) = (ca.remainder(), cb.remainder());
        let mut acc = [0.0f64; 4];
        for (xa, xb) in ca.zip(cb) {
            for k in 0..4 {
                let d = xa[k] - xb[k];
                acc[k] += d * d;
            }
        }
        let mut tail = 0.0;
        for (x, y) in ra.iter().zip(rb) {
            let d = x - y;
            tail += d * d;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    #[test]
    fn scalar_backend_matches_canonical_reference() {
        let be = SimdBackend::scalar();
        for n in 0..16usize {
            let (q, c, _, _) = vectors(n);
            assert_eq!(
                dist2_with(be, &q, &c).to_bits(),
                dist2_reference(&q, &c).to_bits(),
                "dist2 at n={n}"
            );
        }
    }

    /// Every primitive must be bitwise identical across backends, at every
    /// tail length, with and without the aggregate accumulators. On hosts
    /// without AVX2 the comparison is scalar-vs-scalar and trivially holds.
    #[test]
    fn backends_are_bitwise_identical_on_every_primitive() {
        let s = SimdBackend::scalar();
        let v = SimdBackend::detect();
        for n in 0..16usize {
            let (q, lo, hi, a) = vectors(n);
            assert_eq!(
                dist2_with(s, &q, &lo).to_bits(),
                dist2_with(v, &q, &lo).to_bits(),
                "dist2 n={n}"
            );
            assert_eq!(
                dot_with(s, &q, &a).to_bits(),
                dot_with(v, &q, &a).to_bits(),
                "dot n={n}"
            );
            assert_eq!(
                norm2_with(s, &q).to_bits(),
                norm2_with(v, &q).to_bits(),
                "norm2 n={n}"
            );
            assert_eq!(
                rect_dist_with::<true>(s, &q, &lo, &hi, &a),
                rect_dist_with::<true>(v, &q, &lo, &hi, &a),
                "rect_dist n={n}"
            );
            assert_eq!(
                rect_dist_with::<false>(s, &q, &lo, &hi, &[]),
                rect_dist_with::<false>(v, &q, &lo, &hi, &[]),
                "rect_dist noagg n={n}"
            );
            assert_eq!(
                rect_ip_with::<true>(s, &q, &lo, &hi, &a),
                rect_ip_with::<true>(v, &q, &lo, &hi, &a),
                "rect_ip n={n}"
            );
            assert_eq!(
                ball_dist_with::<true>(s, &q, &lo, &a),
                ball_dist_with::<true>(v, &q, &lo, &a),
                "ball_dist n={n}"
            );
            assert_eq!(
                ball_ip_with::<true>(s, &q, &lo, &a),
                ball_ip_with::<true>(v, &q, &lo, &a),
                "ball_ip n={n}"
            );

            let qlo: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin() * 2.0 - 1.0).collect();
            let qhi: Vec<f64> = qlo.iter().map(|x| x + 1.3).collect();
            let qnode = RectQueryNode::new(&qlo, &qhi);
            for w in [1.75, 0.4, -0.9] {
                assert_eq!(
                    rect_rect_dist_with::<true>(s, &qnode, &lo, &hi, &a, w),
                    rect_rect_dist_with::<true>(v, &qnode, &lo, &hi, &a, w),
                    "rect_rect_dist n={n} w={w}"
                );
            }
            assert_eq!(
                rect_rect_ip_with::<true>(s, &qnode, &lo, &hi, &a),
                rect_rect_ip_with::<true>(v, &qnode, &lo, &hi, &a),
                "rect_rect_ip n={n}"
            );
            let bnode = BallQueryNode::new(&qlo, 0.4);
            assert_eq!(
                ball_ball_dist_with::<true>(s, &bnode, &lo, &a),
                ball_ball_dist_with::<true>(v, &bnode, &lo, &a),
                "ball_ball_dist n={n}"
            );
            assert_eq!(
                ball_ball_ip_with::<true>(s, &bnode, &lo, &a),
                ball_ball_ip_with::<true>(v, &bnode, &lo, &a),
                "ball_ball_ip n={n}"
            );

            let mut acc_s = lo.clone();
            let mut acc_v = lo.clone();
            axpy_with(s, &mut acc_s, -0.75, &a);
            axpy_with(v, &mut acc_v, -0.75, &a);
            assert_eq!(acc_s, acc_v, "axpy n={n}");

            let (mut lo_s, mut hi_s) = (lo.clone(), hi.clone());
            let (mut lo_v, mut hi_v) = (lo.clone(), hi.clone());
            min_max_update_with(s, &mut lo_s, &mut hi_s, &q);
            min_max_update_with(v, &mut lo_v, &mut hi_v, &q);
            assert_eq!((lo_s, hi_s), (lo_v, hi_v), "min_max_update n={n}");
        }
    }

    #[test]
    fn axpy_and_min_max_match_plain_loops() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 11] {
            let (q, lo, hi, a) = vectors(n);
            let mut acc = lo.clone();
            axpy_with(SimdBackend::detect(), &mut acc, 1.25, &a);
            for j in 0..n {
                assert_eq!(acc[j].to_bits(), (lo[j] + 1.25 * a[j]).to_bits());
            }
            let (mut l, mut h) = (lo.clone(), hi.clone());
            min_max_update_with(SimdBackend::detect(), &mut l, &mut h, &q);
            for j in 0..n {
                assert_eq!(l[j], lo[j].min(q[j]), "lo at {j}");
                assert_eq!(h[j], hi[j].max(q[j]), "hi at {j}");
            }
        }
    }

    #[test]
    fn probe_entry_points_validate_lengths() {
        let r = std::panic::catch_unwind(|| {
            rect_dist_with::<false>(SimdBackend::scalar(), &[0.0; 5], &[0.0; 4], &[0.0; 5], &[])
        });
        assert!(r.is_err(), "short corner buffer must panic");
        let r = std::panic::catch_unwind(|| {
            rect_dist_with::<true>(
                SimdBackend::scalar(),
                &[0.0; 4],
                &[0.0; 4],
                &[0.0; 4],
                &[0.0; 3],
            )
        });
        assert!(r.is_err(), "short aggregate buffer must panic");
    }

    #[test]
    fn empty_inputs_are_zero_on_both_backends() {
        for be in [SimdBackend::scalar(), SimdBackend::detect()] {
            assert_eq!(dist2_with(be, &[], &[]), 0.0);
            assert_eq!(dot_with(be, &[], &[]), 0.0);
            assert_eq!(norm2_with(be, &[]), 0.0);
            assert_eq!(rect_dist_with::<true>(be, &[], &[], &[], &[]), (0.0, 0.0, 0.0));
            assert_eq!(ball_ip_with::<false>(be, &[], &[], &[]), (0.0, 0.0));
        }
    }
}
