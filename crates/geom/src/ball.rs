//! Bounding balls, the node volume of the ball-tree index family.

use crate::dist::{dist2, dot, norm2};
use crate::points::PointSet;
use crate::BoundingShape;

/// A bounding ball: center `c` and radius `r`, containing every point `p`
/// with `‖p − c‖ ≤ r`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ball {
    center: Vec<f64>,
    radius: f64,
}

impl Ball {
    /// Creates a ball from an explicit center and radius.
    ///
    /// # Panics
    /// Panics if `radius < 0` or the center is empty.
    pub fn new(center: Vec<f64>, radius: f64) -> Self {
        assert!(!center.is_empty(), "Ball requires at least one dimension");
        assert!(radius >= 0.0, "Ball radius must be non-negative");
        Self { center, radius }
    }

    /// The centroid-centered bounding ball of a contiguous index range
    /// `[start, end)`: center = mean of the points, radius = distance to the
    /// farthest member. This is the classic ball-tree node construction.
    pub fn bounding_range(points: &PointSet, start: usize, end: usize) -> Self {
        Self::bounding_range_scratch(points, start, end, &mut Vec::new())
    }

    /// Like [`Ball::bounding_range`], but accumulates the centroid in a
    /// caller-provided scratch buffer so a tree build constructing
    /// thousands of balls only allocates the exact-size center each node
    /// keeps.
    pub fn bounding_range_scratch(
        points: &PointSet,
        start: usize,
        end: usize,
        scratch: &mut Vec<f64>,
    ) -> Self {
        assert!(start < end && end <= points.len(), "invalid range");
        let d = points.dims();
        scratch.clear();
        scratch.resize(d, 0.0);
        for i in start..end {
            for (c, x) in scratch.iter_mut().zip(points.point(i)) {
                *c += x;
            }
        }
        let inv = 1.0 / (end - start) as f64;
        for c in scratch.iter_mut() {
            *c *= inv;
        }
        let mut r2: f64 = 0.0;
        for i in start..end {
            r2 = r2.max(dist2(scratch, points.point(i)));
        }
        Self {
            center: scratch.clone(),
            radius: r2.sqrt(),
        }
    }

    /// Ball center.
    #[inline]
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// Ball radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Whether `p` lies inside the ball (inclusive, with a small epsilon to
    /// absorb the floating-point error of centroid construction).
    pub fn contains(&self, p: &[f64]) -> bool {
        dist2(&self.center, p).sqrt() <= self.radius * (1.0 + 1e-12) + 1e-12
    }
}

impl BoundingShape for Ball {
    #[inline]
    fn mindist2(&self, q: &[f64]) -> f64 {
        let dc = dist2(q, &self.center).sqrt();
        let m = (dc - self.radius).max(0.0);
        m * m
    }

    #[inline]
    fn maxdist2(&self, q: &[f64]) -> f64 {
        let dc = dist2(q, &self.center).sqrt();
        let m = dc + self.radius;
        m * m
    }

    #[inline]
    fn ip_min(&self, q: &[f64]) -> f64 {
        // min over the ball of q·p = q·c − r‖q‖ (attained along −q direction)
        dot(q, &self.center) - self.radius * norm2(q).sqrt()
    }

    #[inline]
    fn ip_max(&self, q: &[f64]) -> f64 {
        dot(q, &self.center) + self.radius * norm2(q).sqrt()
    }

    #[inline]
    fn dims(&self) -> usize {
        self.center.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::prop_assert;
    use karl_testkit::props::vec_of;

    #[test]
    fn bounding_range_contains_members() {
        let ps = PointSet::new(2, vec![0.0, 0.0, 2.0, 0.0, 1.0, 3.0]);
        let b = Ball::bounding_range(&ps, 0, 3);
        assert_eq!(b.center(), &[1.0, 1.0]);
        for p in ps.iter() {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn mindist_inside_is_zero() {
        let b = Ball::new(vec![0.0, 0.0], 2.0);
        assert_eq!(b.mindist2(&[1.0, 0.0]), 0.0);
        assert_eq!(b.mindist2(&[0.0, 2.0]), 0.0);
    }

    #[test]
    fn mindist_maxdist_outside() {
        let b = Ball::new(vec![0.0, 0.0], 1.0);
        let q = [3.0, 0.0];
        assert!((b.mindist2(&q) - 4.0).abs() < 1e-12);
        assert!((b.maxdist2(&q) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn ip_bounds_simple() {
        let b = Ball::new(vec![1.0, 0.0], 1.0);
        let q = [2.0, 0.0];
        // q·c = 2, r‖q‖ = 2
        assert!((b.ip_min(&q) - 0.0).abs() < 1e-12);
        assert!((b.ip_max(&q) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn point_ball_has_equal_bounds() {
        let b = Ball::new(vec![1.0, 2.0], 0.0);
        let q = [4.0, 6.0];
        assert_eq!(b.mindist2(&q), b.maxdist2(&q));
        assert_eq!(b.mindist2(&q), 25.0);
        assert_eq!(b.ip_min(&q), b.ip_max(&q));
    }

    #[test]
    #[should_panic]
    fn negative_radius_panics() {
        Ball::new(vec![0.0], -1.0);
    }

    karl_testkit::props! {
        /// Distance and inner-product bounds bracket the exact values for
        /// every member point of a ball built over random data.
        #[test]
        fn prop_ball_bounds_bracket_truth(
            rows in vec_of(vec_of(-20.0f64..20.0, 3), 2..8),
            q in vec_of(-20.0f64..20.0, 3),
        ) {
            let ps = PointSet::from_rows(&rows);
            let b = Ball::bounding_range(&ps, 0, ps.len());
            for p in ps.iter() {
                let d2 = dist2(&q, p);
                prop_assert!(b.mindist2(&q) <= d2 + 1e-9);
                prop_assert!(b.maxdist2(&q) + 1e-9 >= d2);
                let ip = dot(&q, p);
                prop_assert!(b.ip_min(&q) <= ip + 1e-9);
                prop_assert!(b.ip_max(&q) + 1e-9 >= ip);
            }
        }
    }
}
