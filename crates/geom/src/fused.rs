//! Fused single-pass per-node probe kernels over SoA buffers.
//!
//! The branch-and-bound evaluator needs up to three reductions over the
//! same `d` coordinates at every heap pop: `mindist²(q, R)`,
//! `maxdist²(q, R)` and the aggregate inner product `q · a_R`. Computing
//! them separately walks the node's buffers three times; the fused kernels
//! here do one pass with shared loads and one 4-wide blocked accumulator
//! per output, so a frozen-tree probe touches each cache line once.
//!
//! **Bitwise contract.** Every accumulator replicates the exact blocked
//! summation of the single-output primitives (`dist::dist2`/`dot` and the
//! `Rect` bound methods): lane `k` sums the terms at coordinates
//! `k, k+4, k+8, …` and the final reduction is
//! `(acc0+acc1) + (acc2+acc3) + tail`. Interleaving independent
//! accumulators in one loop does not change the order of adds *within*
//! each accumulator, so the fused outputs are bit-identical to the
//! separate passes — the property the frozen/pointer differential tests
//! rely on. The shared per-coordinate term helpers below are the single
//! source of truth for both code paths.
//!
//! The `AGG` const parameter compiles the `q · a_R` accumulator in or out:
//! SOTA bounds never need the aggregate, and the branch folds away at
//! monomorphization time. With `AGG = false` the `a` slice is ignored
//! (pass `&[]`).

/// Per-coordinate term of `mindist²`: squared gap between `x` and the
/// interval `[l, h]` (zero inside).
#[inline(always)]
pub(crate) fn rect_min_term(x: f64, l: f64, h: f64) -> f64 {
    let diff = if x < l {
        l - x
    } else if x > h {
        x - h
    } else {
        0.0
    };
    diff * diff
}

/// Per-coordinate term of `maxdist²`: squared distance from `x` to the
/// farther end of `[l, h]`.
#[inline(always)]
pub(crate) fn rect_max_term(x: f64, l: f64, h: f64) -> f64 {
    let diff = (x - l).abs().max((h - x).abs());
    diff * diff
}

/// Per-coordinate term of the inner-product lower bound over `[l, h]`.
#[inline(always)]
pub(crate) fn rect_ip_min_term(x: f64, l: f64, h: f64) -> f64 {
    (x * l).min(x * h)
}

/// Per-coordinate term of the inner-product upper bound over `[l, h]`.
#[inline(always)]
pub(crate) fn rect_ip_max_term(x: f64, l: f64, h: f64) -> f64 {
    (x * l).max(x * h)
}

/// Fused rectangle distance probe: `(mindist², maxdist², q·a)` in one pass
/// over `q`, `lo`, `hi` (and `a` when `AGG`).
///
/// Bitwise identical to `Rect::mindist2` / `Rect::maxdist2` /
/// `dist::dot(q, a)` computed separately.
#[inline]
pub fn rect_dist<const AGG: bool>(q: &[f64], lo: &[f64], hi: &[f64], a: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(lo.len(), q.len());
    debug_assert_eq!(hi.len(), q.len());
    debug_assert!(!AGG || a.len() == q.len());
    crate::simd::rect_dist_with::<AGG>(crate::simd::backend(), q, lo, hi, a)
}

/// Fused rectangle inner-product probe: `(ip_min, ip_max, q·a)` in one
/// pass. Bitwise identical to `Rect::ip_min` / `Rect::ip_max` /
/// `dist::dot(q, a)` computed separately.
#[inline]
pub fn rect_ip<const AGG: bool>(q: &[f64], lo: &[f64], hi: &[f64], a: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(lo.len(), q.len());
    debug_assert_eq!(hi.len(), q.len());
    debug_assert!(!AGG || a.len() == q.len());
    crate::simd::rect_ip_with::<AGG>(crate::simd::backend(), q, lo, hi, a)
}

/// Fused ball distance probe: `(dist²(q, center), q·a)` in one pass.
/// Bitwise identical to `dist::dist2(q, center)` / `dist::dot(q, a)`.
#[inline]
pub fn ball_dist<const AGG: bool>(q: &[f64], center: &[f64], a: &[f64]) -> (f64, f64) {
    debug_assert_eq!(center.len(), q.len());
    debug_assert!(!AGG || a.len() == q.len());
    crate::simd::ball_dist_with::<AGG>(crate::simd::backend(), q, center, a)
}

/// Fused ball inner-product probe: `(q·center, q·a)` in one pass.
/// Bitwise identical to two separate `dist::dot` calls.
#[inline]
pub fn ball_ip<const AGG: bool>(q: &[f64], center: &[f64], a: &[f64]) -> (f64, f64) {
    debug_assert_eq!(center.len(), q.len());
    debug_assert!(!AGG || a.len() == q.len());
    crate::simd::ball_ip_with::<AGG>(crate::simd::backend(), q, center, a)
}

/// Batched [`rect_dist`] over a gathered frontier of node ids: for each
/// `id` the node's `d`-dim slices are taken at offset `id * d` in the SoA
/// buffers and the fused probe's `(mindist², maxdist², q·a)` triple is
/// handed to `emit` in order. One call per frontier keeps the bound loop's
/// geometry in a single tight pass; each per-node probe is the *same*
/// scalar kernel, so the outputs are bitwise identical to calling
/// [`rect_dist`] node by node.
#[inline]
pub fn rect_dist_nodes<const AGG: bool, F: FnMut(f64, f64, f64)>(
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (mn, mx, qa) =
            crate::simd::rect_dist_with::<AGG>(be, q, &lo[s..s + d], &hi[s..s + d], an);
        emit(mn, mx, qa);
    }
}

/// Batched [`rect_ip`] over a gathered frontier; see [`rect_dist_nodes`].
#[inline]
pub fn rect_ip_nodes<const AGG: bool, F: FnMut(f64, f64, f64)>(
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (mn, mx, qa) =
            crate::simd::rect_ip_with::<AGG>(be, q, &lo[s..s + d], &hi[s..s + d], an);
        emit(mn, mx, qa);
    }
}

/// Batched [`ball_dist`] over a gathered frontier: emits
/// `(dist²(q, center), q·a)` per node id, bitwise identical to the
/// per-node calls.
#[inline]
pub fn ball_dist_nodes<const AGG: bool, F: FnMut(f64, f64)>(
    q: &[f64],
    centers: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (d2, qa) = crate::simd::ball_dist_with::<AGG>(be, q, &centers[s..s + d], an);
        emit(d2, qa);
    }
}

/// Batched [`ball_ip`] over a gathered frontier: emits `(q·center, q·a)`
/// per node id, bitwise identical to the per-node calls.
#[inline]
pub fn ball_ip_nodes<const AGG: bool, F: FnMut(f64, f64)>(
    q: &[f64],
    centers: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (qc, qa) = crate::simd::ball_ip_with::<AGG>(be, q, &centers[s..s + d], an);
        emit(qc, qa);
    }
}

// ---------------------------------------------------------------------------
// Dual-tree node-vs-node pair kernels
// ---------------------------------------------------------------------------
//
// The dual-tree batch engine bounds a whole query node Q against a data
// node R in one probe. The kernels below compute, in a single pass over
// the `d` coordinates, the min/max of the kernel's scalar argument over
// every (q, p) ∈ Q × R *and* the terms needed to bound the aggregate
// `X_R(q)` over every q ∈ Q. The query side is fixed for an entire data
// frontier, so its per-coordinate constants (corner squares, center
// norms) are hoisted into a `*QueryNode` struct built once per query node
// — the hoisted products are the same `f64` operations a per-pair
// evaluation would form, so hoisting is bitwise neutral (pinned by the
// `hoisted_query_terms_*` tests below).

/// Hoisted query-side constants for the rectangle pair kernels: the query
/// node's MBR corners plus their precomputed coordinate squares, built
/// once per query node and reused across the whole data frontier.
#[derive(Debug, Clone)]
pub struct RectQueryNode<'a> {
    lo: &'a [f64],
    hi: &'a [f64],
    lo2: Vec<f64>,
    hi2: Vec<f64>,
}

impl<'a> RectQueryNode<'a> {
    /// Hoists the query-constant terms of the MBR `[lo, hi]`.
    pub fn new(lo: &'a [f64], hi: &'a [f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "query MBR corner lengths differ");
        RectQueryNode {
            lo,
            hi,
            lo2: lo.iter().map(|&v| v * v).collect(),
            hi2: hi.iter().map(|&v| v * v).collect(),
        }
    }

    /// Lower corner of the query MBR.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        self.lo
    }

    /// Upper corner of the query MBR.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        self.hi
    }

    /// Dimensionality of the query MBR.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Hoisted squares of the lower corner (for the pair quadratics).
    #[inline]
    pub(crate) fn lo2(&self) -> &[f64] {
        &self.lo2
    }

    /// Hoisted squares of the upper corner (for the pair quadratics).
    #[inline]
    pub(crate) fn hi2(&self) -> &[f64] {
        &self.hi2
    }
}

/// Hoisted query-side constants for the ball pair kernels: center, radius
/// and the center norms `‖c_Q‖²` / `‖c_Q‖` computed once per query node.
#[derive(Debug, Clone)]
pub struct BallQueryNode<'a> {
    center: &'a [f64],
    radius: f64,
    norm2: f64,
    norm: f64,
}

impl<'a> BallQueryNode<'a> {
    /// Hoists the query-constant terms of the ball `(center, radius)`.
    pub fn new(center: &'a [f64], radius: f64) -> Self {
        let norm2 = crate::dist::norm2(center);
        BallQueryNode {
            center,
            radius,
            norm2,
            norm: norm2.sqrt(),
        }
    }

    /// Center of the query ball.
    #[inline]
    pub fn center(&self) -> &[f64] {
        self.center
    }

    /// Radius of the query ball.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// `‖c_Q‖²`, hoisted at construction.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.norm2
    }

    /// `‖c_Q‖`, hoisted at construction.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Dimensionality of the query ball.
    #[inline]
    pub fn dims(&self) -> usize {
        self.center.len()
    }
}

/// Per-coordinate term of the pair `mindist²`: squared gap between the
/// intervals `[ql, qh]` and `[l, h]` (zero when they overlap).
#[inline(always)]
pub(crate) fn pair_min_term(ql: f64, qh: f64, l: f64, h: f64) -> f64 {
    let diff = (l - qh).max(ql - h).max(0.0);
    diff * diff
}

/// Per-coordinate term of the pair `maxdist²`: largest squared distance
/// between a point of `[ql, qh]` and a point of `[l, h]`.
#[inline(always)]
pub(crate) fn pair_max_term(ql: f64, qh: f64, l: f64, h: f64) -> f64 {
    let diff = (h - ql).max(qh - l);
    diff * diff
}

/// Per-coordinate minimum over `t ∈ [ql, qh]` of the aggregate quadratic
/// `g(t) = w·t² − 2·a·t` (`w > 0`): the vertex value `−a²/w` when the
/// vertex `a/w` lies strictly inside the interval, else the smaller
/// endpoint value. `ql2`/`qh2` are the hoisted endpoint squares.
#[inline(always)]
pub(crate) fn quad_min_term(ql: f64, qh: f64, ql2: f64, qh2: f64, a: f64, w: f64) -> f64 {
    let gl = w * ql2 - 2.0 * a * ql;
    let gh = w * qh2 - 2.0 * a * qh;
    let m = gl.min(gh);
    let v = a / w;
    if v > ql && v < qh {
        m.min(-(a * a) / w)
    } else {
        m
    }
}

/// Per-coordinate maximum of the same quadratic: `w > 0` makes it convex,
/// so the maximum sits at one of the endpoints.
#[inline(always)]
pub(crate) fn quad_max_term(ql: f64, qh: f64, ql2: f64, qh2: f64, a: f64, w: f64) -> f64 {
    (w * ql2 - 2.0 * a * ql).max(w * qh2 - 2.0 * a * qh)
}

/// Per-coordinate minimum over `t ∈ [ql, qh]`, `s ∈ [l, h]` of `t·s`: the
/// bilinear form is extremal at a corner of the box.
#[inline(always)]
pub(crate) fn pair_ip_min_term(ql: f64, qh: f64, l: f64, h: f64) -> f64 {
    (ql * l).min(ql * h).min((qh * l).min(qh * h))
}

/// Per-coordinate maximum of the same bilinear form.
#[inline(always)]
pub(crate) fn pair_ip_max_term(ql: f64, qh: f64, l: f64, h: f64) -> f64 {
    (ql * l).max(ql * h).max((qh * l).max(qh * h))
}

/// Fused rectangle-vs-rectangle pair probe for distance kernels:
/// `(mindist², maxdist², g_min, g_max)` over the query MBR and the data
/// node `[lo, hi]` in one pass, where `g(q) = w·‖q‖² − 2·q·a` is the
/// query-dependent part of the aggregate `X_R(q)` and `g_min`/`g_max`
/// bound it over every `q` in the query MBR (`w = W_R > 0`). With
/// `AGG = false` the aggregate accumulators are compiled out (pass
/// `a = &[]`, any `w`).
#[inline]
pub fn rect_rect_dist<const AGG: bool>(
    qnode: &RectQueryNode<'_>,
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    w: f64,
) -> (f64, f64, f64, f64) {
    let d = qnode.dims();
    debug_assert_eq!(lo.len(), d);
    debug_assert_eq!(hi.len(), d);
    debug_assert!(!AGG || a.len() == d);
    crate::simd::rect_rect_dist_with::<AGG>(crate::simd::backend(), qnode, lo, hi, a, w)
}

/// Fused rectangle-vs-rectangle pair probe for inner-product kernels:
/// `(ip_min, ip_max, qa_min, qa_max)` in one pass — the extrema of `q·p`
/// over the query MBR × data node, and of the aggregate inner product
/// `q·a` over the query MBR. With `AGG = false` the `q·a` accumulators
/// are compiled out (pass `a = &[]`).
#[inline]
pub fn rect_rect_ip<const AGG: bool>(
    qnode: &RectQueryNode<'_>,
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
) -> (f64, f64, f64, f64) {
    let d = qnode.dims();
    debug_assert_eq!(lo.len(), d);
    debug_assert_eq!(hi.len(), d);
    debug_assert!(!AGG || a.len() == d);
    crate::simd::rect_rect_ip_with::<AGG>(crate::simd::backend(), qnode, lo, hi, a)
}

/// Fused ball-vs-ball pair probe for distance kernels:
/// `(dist²(c_Q, c_R), c_Q·a, ‖a‖²)` in one pass. The radius algebra
/// (adding/subtracting `r_Q + r_R`, forming the aggregate interval from
/// `‖W·c_Q − a‖`) lives in the bounds layer; this kernel only fuses the
/// coordinate reductions. With `AGG = false` the aggregate accumulators
/// are compiled out (pass `a = &[]`).
#[inline]
pub fn ball_ball_dist<const AGG: bool>(
    qnode: &BallQueryNode<'_>,
    center: &[f64],
    a: &[f64],
) -> (f64, f64, f64) {
    let d = qnode.dims();
    debug_assert_eq!(center.len(), d);
    debug_assert!(!AGG || a.len() == d);
    crate::simd::ball_ball_dist_with::<AGG>(crate::simd::backend(), qnode, center, a)
}

/// Fused ball-vs-ball pair probe for inner-product kernels:
/// `(c_Q·c_R, ‖c_R‖², c_Q·a, ‖a‖²)` in one pass — everything the bounds
/// layer needs to pad `q·p` and `q·a` by the Cauchy–Schwarz radius terms.
/// With `AGG = false` the aggregate accumulators are compiled out (pass
/// `a = &[]`).
#[inline]
pub fn ball_ball_ip<const AGG: bool>(
    qnode: &BallQueryNode<'_>,
    center: &[f64],
    a: &[f64],
) -> (f64, f64, f64, f64) {
    let d = qnode.dims();
    debug_assert_eq!(center.len(), d);
    debug_assert!(!AGG || a.len() == d);
    crate::simd::ball_ball_ip_with::<AGG>(crate::simd::backend(), qnode, center, a)
}

/// Batched [`rect_rect_dist`] over a gathered frontier of data node ids:
/// the query node's hoisted constants are built once by the caller and
/// reused for every data node — the query-constant terms stay out of the
/// node loop. `w` is the per-node `W_R` buffer indexed by id. Each
/// per-node probe is the *same* scalar kernel, so the outputs are bitwise
/// identical to calling [`rect_rect_dist`] node by node.
#[inline]
pub fn rect_rect_dist_nodes<const AGG: bool, F: FnMut(f64, f64, f64, f64)>(
    qnode: &RectQueryNode<'_>,
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    w: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = qnode.dims();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let wn = if AGG { w[id as usize] } else { 0.0 };
        let (mn, mx, gn, gx) =
            crate::simd::rect_rect_dist_with::<AGG>(be, qnode, &lo[s..s + d], &hi[s..s + d], an, wn);
        emit(mn, mx, gn, gx);
    }
}

/// Batched [`rect_rect_ip`] over a gathered frontier; see
/// [`rect_rect_dist_nodes`].
#[inline]
pub fn rect_rect_ip_nodes<const AGG: bool, F: FnMut(f64, f64, f64, f64)>(
    qnode: &RectQueryNode<'_>,
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = qnode.dims();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (mn, mx, an_v, ax_v) =
            crate::simd::rect_rect_ip_with::<AGG>(be, qnode, &lo[s..s + d], &hi[s..s + d], an);
        emit(mn, mx, an_v, ax_v);
    }
}

/// Batched [`ball_ball_dist`] over a gathered frontier; see
/// [`rect_rect_dist_nodes`].
#[inline]
pub fn ball_ball_dist_nodes<const AGG: bool, F: FnMut(f64, f64, f64)>(
    qnode: &BallQueryNode<'_>,
    centers: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = qnode.dims();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (d2, qa, aa) = crate::simd::ball_ball_dist_with::<AGG>(be, qnode, &centers[s..s + d], an);
        emit(d2, qa, aa);
    }
}

/// Batched [`ball_ball_ip`] over a gathered frontier; see
/// [`rect_rect_dist_nodes`].
#[inline]
pub fn ball_ball_ip_nodes<const AGG: bool, F: FnMut(f64, f64, f64, f64)>(
    qnode: &BallQueryNode<'_>,
    centers: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = qnode.dims();
    let be = crate::simd::backend();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (qc, cc, qa, aa) =
            crate::simd::ball_ball_ip_with::<AGG>(be, qnode, &centers[s..s + d], an);
        emit(qc, cc, qa, aa);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{dist2, dot};
    use crate::{BoundingShape, Rect};

    /// Deterministic quasi-random vectors exercising every remainder
    /// length around the 4-wide blocking.
    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let lo: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 2.0 - 1.5).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + 2.0).collect();
        let a: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.31).tan().clamp(-4.0, 4.0))
            .collect();
        (q, lo, hi, a)
    }

    #[test]
    fn rect_dist_bitwise_matches_separate_passes() {
        for n in 1..13usize {
            let (q, lo, hi, a) = vectors(n);
            let rect = Rect::new(lo.clone(), hi.clone());
            let (mn, mx, qa) = rect_dist::<true>(&q, &lo, &hi, &a);
            assert_eq!(mn, rect.mindist2(&q), "mindist2 at n={n}");
            assert_eq!(mx, rect.maxdist2(&q), "maxdist2 at n={n}");
            assert_eq!(qa, dot(&q, &a), "q·a at n={n}");
            let (mn0, mx0, qa0) = rect_dist::<false>(&q, &lo, &hi, &[]);
            assert_eq!((mn0, mx0, qa0), (mn, mx, 0.0));
        }
    }

    #[test]
    fn rect_ip_bitwise_matches_separate_passes() {
        for n in 1..13usize {
            let (q, lo, hi, a) = vectors(n);
            let rect = Rect::new(lo.clone(), hi.clone());
            let (mn, mx, qa) = rect_ip::<true>(&q, &lo, &hi, &a);
            assert_eq!(mn, rect.ip_min(&q), "ip_min at n={n}");
            assert_eq!(mx, rect.ip_max(&q), "ip_max at n={n}");
            assert_eq!(qa, dot(&q, &a), "q·a at n={n}");
            let (mn0, mx0, qa0) = rect_ip::<false>(&q, &lo, &hi, &[]);
            assert_eq!((mn0, mx0, qa0), (mn, mx, 0.0));
        }
    }

    #[test]
    fn ball_probes_bitwise_match_separate_passes() {
        for n in 1..13usize {
            let (q, c, _, a) = vectors(n);
            let (d2, qa) = ball_dist::<true>(&q, &c, &a);
            assert_eq!(d2, dist2(&q, &c), "dist2 at n={n}");
            assert_eq!(qa, dot(&q, &a), "q·a at n={n}");
            assert_eq!(ball_dist::<false>(&q, &c, &[]), (d2, 0.0));
            let (qc, qa2) = ball_ip::<true>(&q, &c, &a);
            assert_eq!(qc, dot(&q, &c), "q·c at n={n}");
            assert_eq!(qa2, qa);
            assert_eq!(ball_ip::<false>(&q, &c, &[]), (qc, 0.0));
        }
    }

    #[test]
    fn batched_node_kernels_bitwise_match_per_node_calls() {
        // Node-major SoA buffers for 5 fake nodes of dimension d, probed in
        // a shuffled id order with repeats (a frontier may revisit bits of
        // the array in any order).
        let d = 7usize;
        let nodes = 5usize;
        let (q, _, _, _) = vectors(d);
        let mut lo = Vec::with_capacity(nodes * d);
        let mut hi = Vec::with_capacity(nodes * d);
        let mut a = Vec::with_capacity(nodes * d);
        for i in 0..nodes * d {
            let t = i as f64 * 0.41;
            lo.push(t.sin() * 2.0 - 1.0);
            hi.push(t.sin() * 2.0 - 1.0 + (t.cos().abs() + 0.1));
            a.push((t * 1.7).cos() * 3.0);
        }
        let ids: [u32; 7] = [3, 0, 4, 1, 1, 2, 0];

        let mut got = Vec::new();
        rect_dist_nodes::<true, _>(&q, &lo, &hi, &a, &ids, |mn, mx, qa| got.push((mn, mx, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = rect_dist::<true>(&q, &lo[s..s + d], &hi[s..s + d], &a[s..s + d]);
            assert_eq!(got[k], want, "rect_dist_nodes id {id}");
        }

        let mut got = Vec::new();
        rect_ip_nodes::<false, _>(&q, &lo, &hi, &[], &ids, |mn, mx, qa| got.push((mn, mx, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = rect_ip::<false>(&q, &lo[s..s + d], &hi[s..s + d], &[]);
            assert_eq!(got[k], want, "rect_ip_nodes id {id}");
        }

        let mut got = Vec::new();
        ball_dist_nodes::<true, _>(&q, &lo, &a, &ids, |d2, qa| got.push((d2, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = ball_dist::<true>(&q, &lo[s..s + d], &a[s..s + d]);
            assert_eq!(got[k], want, "ball_dist_nodes id {id}");
        }

        let mut got = Vec::new();
        ball_ip_nodes::<false, _>(&q, &lo, &[], &ids, |qc, qa| got.push((qc, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = ball_ip::<false>(&q, &lo[s..s + d], &[]);
            assert_eq!(got[k], want, "ball_ip_nodes id {id}");
        }

        // Empty frontier: no emissions.
        rect_dist_nodes::<true, _>(&q, &lo, &hi, &a, &[], |_, _, _| {
            panic!("emit on empty frontier")
        });
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(rect_dist::<true>(&[], &[], &[], &[]), (0.0, 0.0, 0.0));
        assert_eq!(rect_ip::<false>(&[], &[], &[], &[]), (0.0, 0.0, 0.0));
        assert_eq!(ball_dist::<true>(&[], &[], &[]), (0.0, 0.0));
        assert_eq!(ball_ip::<false>(&[], &[], &[]), (0.0, 0.0));
    }

    /// Deterministic query/data boxes exercising every remainder length,
    /// plus an aggregate vector and weight for the `AGG` outputs.
    #[allow(clippy::type_complexity)]
    fn pair_vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, f64) {
        let qlo: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin() * 2.0 - 1.0).collect();
        let qhi: Vec<f64> = qlo.iter().map(|l| l + 1.3).collect();
        let lo: Vec<f64> = (0..n).map(|i| (i as f64 * 1.1).cos() * 2.5 - 0.5).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + 1.7).collect();
        let a: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).tan().clamp(-3.0, 3.0))
            .collect();
        (qlo, qhi, lo, hi, a, 1.75)
    }

    /// Deterministic samples at fraction `t` between two corners.
    fn lerp(lo: &[f64], hi: &[f64], t: f64) -> Vec<f64> {
        lo.iter().zip(hi).map(|(&l, &h)| l + t * (h - l)).collect()
    }

    #[test]
    fn rect_rect_pair_bounds_contain_sampled_point_pairs() {
        for n in 1..13usize {
            let (qlo, qhi, lo, hi, a, w) = pair_vectors(n);
            let qnode = RectQueryNode::new(&qlo, &qhi);
            let (mn, mx, gn, gx) = rect_rect_dist::<true>(&qnode, &lo, &hi, &a, w);
            let (ipn, ipx, qan, qax) = rect_rect_ip::<true>(&qnode, &lo, &hi, &a);
            assert!(mn <= mx && gn <= gx && ipn <= ipx && qan <= qax);
            for &tq in &[0.0, 0.23, 0.5, 0.77, 1.0] {
                let q = lerp(&qlo, &qhi, tq);
                for &tp in &[0.0, 0.41, 1.0] {
                    let p = lerp(&lo, &hi, tp);
                    let d2 = dist2(&q, &p);
                    assert!(mn <= d2 + 1e-12 && d2 <= mx + 1e-12, "dist² n={n}");
                    let ip = dot(&q, &p);
                    assert!(ipn <= ip + 1e-12 && ip <= ipx + 1e-12, "q·p n={n}");
                }
                let g = w * crate::dist::norm2(&q) - 2.0 * dot(&q, &a);
                let tol = 1e-12 * (1.0 + g.abs());
                assert!(gn <= g + tol && g <= gx + tol, "g n={n} tq={tq}");
                let qa = dot(&q, &a);
                assert!(qan <= qa + 1e-12 && qa <= qax + 1e-12, "q·a n={n}");
            }
        }
    }

    #[test]
    fn degenerate_query_rect_matches_single_query_probe() {
        // A zero-volume query MBR is a single query point: the pair
        // mindist²/maxdist² collapse to the per-query probe's values.
        for n in 1..13usize {
            let (q, lo, hi, _) = vectors(n);
            let qnode = RectQueryNode::new(&q, &q);
            let (mn, mx, _, _) = rect_rect_dist::<false>(&qnode, &lo, &hi, &[], 0.0);
            let (smn, smx, _) = rect_dist::<false>(&q, &lo, &hi, &[]);
            assert_eq!(mn, smn, "mindist² n={n}");
            assert_eq!(mx, smx, "maxdist² n={n}");
            let (ipn, ipx, _, _) = rect_rect_ip::<false>(&qnode, &lo, &hi, &[]);
            let (sin_, six, _) = rect_ip::<false>(&q, &lo, &hi, &[]);
            assert_eq!(ipn, sin_, "ip_min n={n}");
            assert_eq!(ipx, six, "ip_max n={n}");
        }
    }

    #[test]
    fn ball_ball_pair_reductions_match_separate_passes() {
        for n in 1..13usize {
            let (q, c, _, a) = vectors(n);
            let qnode = BallQueryNode::new(&q, 0.4);
            assert_eq!(qnode.norm2(), crate::dist::norm2(&q));
            assert_eq!(qnode.norm(), qnode.norm2().sqrt());
            let (d2, qa, aa) = ball_ball_dist::<true>(&qnode, &c, &a);
            assert_eq!(d2, dist2(&q, &c), "dist² n={n}");
            let tol = 1e-12 * (1.0 + qa.abs());
            assert!((qa - dot(&q, &a)).abs() <= tol, "c_Q·a n={n}");
            assert!((aa - crate::dist::norm2(&a)).abs() <= 1e-12 * (1.0 + aa), "‖a‖² n={n}");
            let (qc, cc, qa2, aa2) = ball_ball_ip::<true>(&qnode, &c, &a);
            assert!((qc - dot(&q, &c)).abs() <= 1e-12 * (1.0 + qc.abs()));
            assert!((cc - crate::dist::norm2(&c)).abs() <= 1e-12 * (1.0 + cc));
            assert_eq!(qa2, qa);
            assert_eq!(aa2, aa);
            assert_eq!(ball_ball_dist::<false>(&qnode, &c, &[]), (d2, 0.0, 0.0));
            assert_eq!(ball_ball_ip::<false>(&qnode, &c, &[]), (qc, cc, 0.0, 0.0));
        }
    }

    /// Satellite fix pin: the hoisted query-side constants (corner
    /// squares, center norms) must be **bitwise identical** to recomputing
    /// the query-constant terms inside the node loop, per data node.
    #[test]
    fn hoisted_query_terms_are_bitwise_identical_to_inline_recomputation() {
        for n in 1..13usize {
            let (qlo, qhi, lo, hi, a, w) = pair_vectors(n);
            let qnode = RectQueryNode::new(&qlo, &qhi);
            let (_, _, gn, gx) = rect_rect_dist::<true>(&qnode, &lo, &hi, &a, w);
            // Naive reference: recompute the endpoint squares inline, the
            // way a per-pair evaluation without the hoist would.
            let (mut gn_ref, mut gx_ref) = ([0.0f64; 4], [0.0f64; 4]);
            let (mut gn_t, mut gx_t) = (0.0, 0.0);
            let blocks = n - n % 4;
            let mut j = 0;
            while j < blocks {
                for k in 0..4 {
                    let (ql, qh) = (qlo[j + k], qhi[j + k]);
                    gn_ref[k] += quad_min_term(ql, qh, ql * ql, qh * qh, a[j + k], w);
                    gx_ref[k] += quad_max_term(ql, qh, ql * ql, qh * qh, a[j + k], w);
                }
                j += 4;
            }
            while j < n {
                let (ql, qh) = (qlo[j], qhi[j]);
                gn_t += quad_min_term(ql, qh, ql * ql, qh * qh, a[j], w);
                gx_t += quad_max_term(ql, qh, ql * ql, qh * qh, a[j], w);
                j += 1;
            }
            let gn_naive = (gn_ref[0] + gn_ref[1]) + (gn_ref[2] + gn_ref[3]) + gn_t;
            let gx_naive = (gx_ref[0] + gx_ref[1]) + (gx_ref[2] + gx_ref[3]) + gx_t;
            assert_eq!(gn.to_bits(), gn_naive.to_bits(), "g_min n={n}");
            assert_eq!(gx.to_bits(), gx_naive.to_bits(), "g_max n={n}");
            // Ball side: the hoisted ‖c_Q‖² is the shared norm2 reduction.
            let qnode = BallQueryNode::new(&qlo, 0.3);
            assert_eq!(qnode.norm2().to_bits(), crate::dist::norm2(&qlo).to_bits());
        }
    }

    #[test]
    fn batched_pair_kernels_bitwise_match_per_node_calls() {
        let d = 6usize;
        let nodes = 4usize;
        let (qlo, qhi, _, _, _, _) = pair_vectors(d);
        let qrect = RectQueryNode::new(&qlo, &qhi);
        let qball = BallQueryNode::new(&qlo, 0.5);
        let mut lo = Vec::with_capacity(nodes * d);
        let mut hi = Vec::with_capacity(nodes * d);
        let mut a = Vec::with_capacity(nodes * d);
        for i in 0..nodes * d {
            let t = i as f64 * 0.53;
            lo.push(t.sin() * 2.0 - 1.0);
            hi.push(t.sin() * 2.0 - 1.0 + (t.cos().abs() + 0.2));
            a.push((t * 1.3).cos() * 2.0);
        }
        let w: Vec<f64> = (0..nodes).map(|i| 0.5 + i as f64 * 0.7).collect();
        let ids: [u32; 6] = [2, 0, 3, 1, 1, 0];

        let mut got = Vec::new();
        rect_rect_dist_nodes::<true, _>(&qrect, &lo, &hi, &a, &w, &ids, |mn, mx, gn, gx| {
            got.push((mn, mx, gn, gx))
        });
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = rect_rect_dist::<true>(
                &qrect,
                &lo[s..s + d],
                &hi[s..s + d],
                &a[s..s + d],
                w[id as usize],
            );
            assert_eq!(got[k], want, "rect_rect_dist_nodes id {id}");
        }

        let mut got = Vec::new();
        rect_rect_ip_nodes::<true, _>(&qrect, &lo, &hi, &a, &ids, |mn, mx, an, ax| {
            got.push((mn, mx, an, ax))
        });
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = rect_rect_ip::<true>(&qrect, &lo[s..s + d], &hi[s..s + d], &a[s..s + d]);
            assert_eq!(got[k], want, "rect_rect_ip_nodes id {id}");
        }

        let mut got = Vec::new();
        ball_ball_dist_nodes::<true, _>(&qball, &lo, &a, &ids, |d2, qa, aa| {
            got.push((d2, qa, aa))
        });
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = ball_ball_dist::<true>(&qball, &lo[s..s + d], &a[s..s + d]);
            assert_eq!(got[k], want, "ball_ball_dist_nodes id {id}");
        }

        let mut got = Vec::new();
        ball_ball_ip_nodes::<false, _>(&qball, &lo, &[], &ids, |qc, cc, qa, aa| {
            got.push((qc, cc, qa, aa))
        });
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = ball_ball_ip::<false>(&qball, &lo[s..s + d], &[]);
            assert_eq!(got[k], want, "ball_ball_ip_nodes id {id}");
        }

        rect_rect_dist_nodes::<true, _>(&qrect, &lo, &hi, &a, &w, &[], |_, _, _, _| {
            panic!("emit on empty frontier")
        });
    }
}
