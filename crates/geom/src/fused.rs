//! Fused single-pass per-node probe kernels over SoA buffers.
//!
//! The branch-and-bound evaluator needs up to three reductions over the
//! same `d` coordinates at every heap pop: `mindist²(q, R)`,
//! `maxdist²(q, R)` and the aggregate inner product `q · a_R`. Computing
//! them separately walks the node's buffers three times; the fused kernels
//! here do one pass with shared loads and one 4-wide blocked accumulator
//! per output, so a frozen-tree probe touches each cache line once.
//!
//! **Bitwise contract.** Every accumulator replicates the exact blocked
//! summation of the single-output primitives (`dist::dist2`/`dot` and the
//! `Rect` bound methods): lane `k` sums the terms at coordinates
//! `k, k+4, k+8, …` and the final reduction is
//! `(acc0+acc1) + (acc2+acc3) + tail`. Interleaving independent
//! accumulators in one loop does not change the order of adds *within*
//! each accumulator, so the fused outputs are bit-identical to the
//! separate passes — the property the frozen/pointer differential tests
//! rely on. The shared per-coordinate term helpers below are the single
//! source of truth for both code paths.
//!
//! The `AGG` const parameter compiles the `q · a_R` accumulator in or out:
//! SOTA bounds never need the aggregate, and the branch folds away at
//! monomorphization time. With `AGG = false` the `a` slice is ignored
//! (pass `&[]`).

/// Per-coordinate term of `mindist²`: squared gap between `x` and the
/// interval `[l, h]` (zero inside).
#[inline(always)]
pub(crate) fn rect_min_term(x: f64, l: f64, h: f64) -> f64 {
    let diff = if x < l {
        l - x
    } else if x > h {
        x - h
    } else {
        0.0
    };
    diff * diff
}

/// Per-coordinate term of `maxdist²`: squared distance from `x` to the
/// farther end of `[l, h]`.
#[inline(always)]
pub(crate) fn rect_max_term(x: f64, l: f64, h: f64) -> f64 {
    let diff = (x - l).abs().max((h - x).abs());
    diff * diff
}

/// Per-coordinate term of the inner-product lower bound over `[l, h]`.
#[inline(always)]
pub(crate) fn rect_ip_min_term(x: f64, l: f64, h: f64) -> f64 {
    (x * l).min(x * h)
}

/// Per-coordinate term of the inner-product upper bound over `[l, h]`.
#[inline(always)]
pub(crate) fn rect_ip_max_term(x: f64, l: f64, h: f64) -> f64 {
    (x * l).max(x * h)
}

/// Fused rectangle distance probe: `(mindist², maxdist², q·a)` in one pass
/// over `q`, `lo`, `hi` (and `a` when `AGG`).
///
/// Bitwise identical to `Rect::mindist2` / `Rect::maxdist2` /
/// `dist::dot(q, a)` computed separately.
#[inline]
pub fn rect_dist<const AGG: bool>(q: &[f64], lo: &[f64], hi: &[f64], a: &[f64]) -> (f64, f64, f64) {
    let d = q.len();
    debug_assert_eq!(lo.len(), d);
    debug_assert_eq!(hi.len(), d);
    debug_assert!(!AGG || a.len() == d);
    let blocks = d - d % 4;
    let mut mn = [0.0f64; 4];
    let mut mx = [0.0f64; 4];
    let mut qa = [0.0f64; 4];
    let mut j = 0;
    while j < blocks {
        let (x0, l0, h0) = (q[j], lo[j], hi[j]);
        let (x1, l1, h1) = (q[j + 1], lo[j + 1], hi[j + 1]);
        let (x2, l2, h2) = (q[j + 2], lo[j + 2], hi[j + 2]);
        let (x3, l3, h3) = (q[j + 3], lo[j + 3], hi[j + 3]);
        mn[0] += rect_min_term(x0, l0, h0);
        mn[1] += rect_min_term(x1, l1, h1);
        mn[2] += rect_min_term(x2, l2, h2);
        mn[3] += rect_min_term(x3, l3, h3);
        mx[0] += rect_max_term(x0, l0, h0);
        mx[1] += rect_max_term(x1, l1, h1);
        mx[2] += rect_max_term(x2, l2, h2);
        mx[3] += rect_max_term(x3, l3, h3);
        if AGG {
            qa[0] += x0 * a[j];
            qa[1] += x1 * a[j + 1];
            qa[2] += x2 * a[j + 2];
            qa[3] += x3 * a[j + 3];
        }
        j += 4;
    }
    let (mut mn_t, mut mx_t, mut qa_t) = (0.0, 0.0, 0.0);
    while j < d {
        let (x, l, h) = (q[j], lo[j], hi[j]);
        mn_t += rect_min_term(x, l, h);
        mx_t += rect_max_term(x, l, h);
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (
        (mn[0] + mn[1]) + (mn[2] + mn[3]) + mn_t,
        (mx[0] + mx[1]) + (mx[2] + mx[3]) + mx_t,
        if AGG {
            (qa[0] + qa[1]) + (qa[2] + qa[3]) + qa_t
        } else {
            0.0
        },
    )
}

/// Fused rectangle inner-product probe: `(ip_min, ip_max, q·a)` in one
/// pass. Bitwise identical to `Rect::ip_min` / `Rect::ip_max` /
/// `dist::dot(q, a)` computed separately.
#[inline]
pub fn rect_ip<const AGG: bool>(q: &[f64], lo: &[f64], hi: &[f64], a: &[f64]) -> (f64, f64, f64) {
    let d = q.len();
    debug_assert_eq!(lo.len(), d);
    debug_assert_eq!(hi.len(), d);
    debug_assert!(!AGG || a.len() == d);
    let blocks = d - d % 4;
    let mut mn = [0.0f64; 4];
    let mut mx = [0.0f64; 4];
    let mut qa = [0.0f64; 4];
    let mut j = 0;
    while j < blocks {
        let (x0, l0, h0) = (q[j], lo[j], hi[j]);
        let (x1, l1, h1) = (q[j + 1], lo[j + 1], hi[j + 1]);
        let (x2, l2, h2) = (q[j + 2], lo[j + 2], hi[j + 2]);
        let (x3, l3, h3) = (q[j + 3], lo[j + 3], hi[j + 3]);
        mn[0] += rect_ip_min_term(x0, l0, h0);
        mn[1] += rect_ip_min_term(x1, l1, h1);
        mn[2] += rect_ip_min_term(x2, l2, h2);
        mn[3] += rect_ip_min_term(x3, l3, h3);
        mx[0] += rect_ip_max_term(x0, l0, h0);
        mx[1] += rect_ip_max_term(x1, l1, h1);
        mx[2] += rect_ip_max_term(x2, l2, h2);
        mx[3] += rect_ip_max_term(x3, l3, h3);
        if AGG {
            qa[0] += x0 * a[j];
            qa[1] += x1 * a[j + 1];
            qa[2] += x2 * a[j + 2];
            qa[3] += x3 * a[j + 3];
        }
        j += 4;
    }
    let (mut mn_t, mut mx_t, mut qa_t) = (0.0, 0.0, 0.0);
    while j < d {
        let (x, l, h) = (q[j], lo[j], hi[j]);
        mn_t += rect_ip_min_term(x, l, h);
        mx_t += rect_ip_max_term(x, l, h);
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (
        (mn[0] + mn[1]) + (mn[2] + mn[3]) + mn_t,
        (mx[0] + mx[1]) + (mx[2] + mx[3]) + mx_t,
        if AGG {
            (qa[0] + qa[1]) + (qa[2] + qa[3]) + qa_t
        } else {
            0.0
        },
    )
}

/// Fused ball distance probe: `(dist²(q, center), q·a)` in one pass.
/// Bitwise identical to `dist::dist2(q, center)` / `dist::dot(q, a)`.
#[inline]
pub fn ball_dist<const AGG: bool>(q: &[f64], center: &[f64], a: &[f64]) -> (f64, f64) {
    let d = q.len();
    debug_assert_eq!(center.len(), d);
    debug_assert!(!AGG || a.len() == d);
    let blocks = d - d % 4;
    let mut ds = [0.0f64; 4];
    let mut qa = [0.0f64; 4];
    let mut j = 0;
    while j < blocks {
        let (x0, x1, x2, x3) = (q[j], q[j + 1], q[j + 2], q[j + 3]);
        let d0 = x0 - center[j];
        let d1 = x1 - center[j + 1];
        let d2 = x2 - center[j + 2];
        let d3 = x3 - center[j + 3];
        ds[0] += d0 * d0;
        ds[1] += d1 * d1;
        ds[2] += d2 * d2;
        ds[3] += d3 * d3;
        if AGG {
            qa[0] += x0 * a[j];
            qa[1] += x1 * a[j + 1];
            qa[2] += x2 * a[j + 2];
            qa[3] += x3 * a[j + 3];
        }
        j += 4;
    }
    let (mut ds_t, mut qa_t) = (0.0, 0.0);
    while j < d {
        let x = q[j];
        let dd = x - center[j];
        ds_t += dd * dd;
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (
        (ds[0] + ds[1]) + (ds[2] + ds[3]) + ds_t,
        if AGG {
            (qa[0] + qa[1]) + (qa[2] + qa[3]) + qa_t
        } else {
            0.0
        },
    )
}

/// Fused ball inner-product probe: `(q·center, q·a)` in one pass.
/// Bitwise identical to two separate `dist::dot` calls.
#[inline]
pub fn ball_ip<const AGG: bool>(q: &[f64], center: &[f64], a: &[f64]) -> (f64, f64) {
    let d = q.len();
    debug_assert_eq!(center.len(), d);
    debug_assert!(!AGG || a.len() == d);
    let blocks = d - d % 4;
    let mut qc = [0.0f64; 4];
    let mut qa = [0.0f64; 4];
    let mut j = 0;
    while j < blocks {
        let (x0, x1, x2, x3) = (q[j], q[j + 1], q[j + 2], q[j + 3]);
        qc[0] += x0 * center[j];
        qc[1] += x1 * center[j + 1];
        qc[2] += x2 * center[j + 2];
        qc[3] += x3 * center[j + 3];
        if AGG {
            qa[0] += x0 * a[j];
            qa[1] += x1 * a[j + 1];
            qa[2] += x2 * a[j + 2];
            qa[3] += x3 * a[j + 3];
        }
        j += 4;
    }
    let (mut qc_t, mut qa_t) = (0.0, 0.0);
    while j < d {
        let x = q[j];
        qc_t += x * center[j];
        if AGG {
            qa_t += x * a[j];
        }
        j += 1;
    }
    (
        (qc[0] + qc[1]) + (qc[2] + qc[3]) + qc_t,
        if AGG {
            (qa[0] + qa[1]) + (qa[2] + qa[3]) + qa_t
        } else {
            0.0
        },
    )
}

/// Batched [`rect_dist`] over a gathered frontier of node ids: for each
/// `id` the node's `d`-dim slices are taken at offset `id * d` in the SoA
/// buffers and the fused probe's `(mindist², maxdist², q·a)` triple is
/// handed to `emit` in order. One call per frontier keeps the bound loop's
/// geometry in a single tight pass; each per-node probe is the *same*
/// scalar kernel, so the outputs are bitwise identical to calling
/// [`rect_dist`] node by node.
#[inline]
pub fn rect_dist_nodes<const AGG: bool, F: FnMut(f64, f64, f64)>(
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (mn, mx, qa) = rect_dist::<AGG>(q, &lo[s..s + d], &hi[s..s + d], an);
        emit(mn, mx, qa);
    }
}

/// Batched [`rect_ip`] over a gathered frontier; see [`rect_dist_nodes`].
#[inline]
pub fn rect_ip_nodes<const AGG: bool, F: FnMut(f64, f64, f64)>(
    q: &[f64],
    lo: &[f64],
    hi: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (mn, mx, qa) = rect_ip::<AGG>(q, &lo[s..s + d], &hi[s..s + d], an);
        emit(mn, mx, qa);
    }
}

/// Batched [`ball_dist`] over a gathered frontier: emits
/// `(dist²(q, center), q·a)` per node id, bitwise identical to the
/// per-node calls.
#[inline]
pub fn ball_dist_nodes<const AGG: bool, F: FnMut(f64, f64)>(
    q: &[f64],
    centers: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (d2, qa) = ball_dist::<AGG>(q, &centers[s..s + d], an);
        emit(d2, qa);
    }
}

/// Batched [`ball_ip`] over a gathered frontier: emits `(q·center, q·a)`
/// per node id, bitwise identical to the per-node calls.
#[inline]
pub fn ball_ip_nodes<const AGG: bool, F: FnMut(f64, f64)>(
    q: &[f64],
    centers: &[f64],
    a: &[f64],
    ids: &[u32],
    mut emit: F,
) {
    let d = q.len();
    for &id in ids {
        let s = id as usize * d;
        let an: &[f64] = if AGG { &a[s..s + d] } else { &[] };
        let (qc, qa) = ball_ip::<AGG>(q, &centers[s..s + d], an);
        emit(qc, qa);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{dist2, dot};
    use crate::{BoundingShape, Rect};

    /// Deterministic quasi-random vectors exercising every remainder
    /// length around the 4-wide blocking.
    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let lo: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 2.0 - 1.5).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + 2.0).collect();
        let a: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.31).tan().clamp(-4.0, 4.0))
            .collect();
        (q, lo, hi, a)
    }

    #[test]
    fn rect_dist_bitwise_matches_separate_passes() {
        for n in 1..13usize {
            let (q, lo, hi, a) = vectors(n);
            let rect = Rect::new(lo.clone(), hi.clone());
            let (mn, mx, qa) = rect_dist::<true>(&q, &lo, &hi, &a);
            assert_eq!(mn, rect.mindist2(&q), "mindist2 at n={n}");
            assert_eq!(mx, rect.maxdist2(&q), "maxdist2 at n={n}");
            assert_eq!(qa, dot(&q, &a), "q·a at n={n}");
            let (mn0, mx0, qa0) = rect_dist::<false>(&q, &lo, &hi, &[]);
            assert_eq!((mn0, mx0, qa0), (mn, mx, 0.0));
        }
    }

    #[test]
    fn rect_ip_bitwise_matches_separate_passes() {
        for n in 1..13usize {
            let (q, lo, hi, a) = vectors(n);
            let rect = Rect::new(lo.clone(), hi.clone());
            let (mn, mx, qa) = rect_ip::<true>(&q, &lo, &hi, &a);
            assert_eq!(mn, rect.ip_min(&q), "ip_min at n={n}");
            assert_eq!(mx, rect.ip_max(&q), "ip_max at n={n}");
            assert_eq!(qa, dot(&q, &a), "q·a at n={n}");
            let (mn0, mx0, qa0) = rect_ip::<false>(&q, &lo, &hi, &[]);
            assert_eq!((mn0, mx0, qa0), (mn, mx, 0.0));
        }
    }

    #[test]
    fn ball_probes_bitwise_match_separate_passes() {
        for n in 1..13usize {
            let (q, c, _, a) = vectors(n);
            let (d2, qa) = ball_dist::<true>(&q, &c, &a);
            assert_eq!(d2, dist2(&q, &c), "dist2 at n={n}");
            assert_eq!(qa, dot(&q, &a), "q·a at n={n}");
            assert_eq!(ball_dist::<false>(&q, &c, &[]), (d2, 0.0));
            let (qc, qa2) = ball_ip::<true>(&q, &c, &a);
            assert_eq!(qc, dot(&q, &c), "q·c at n={n}");
            assert_eq!(qa2, qa);
            assert_eq!(ball_ip::<false>(&q, &c, &[]), (qc, 0.0));
        }
    }

    #[test]
    fn batched_node_kernels_bitwise_match_per_node_calls() {
        // Node-major SoA buffers for 5 fake nodes of dimension d, probed in
        // a shuffled id order with repeats (a frontier may revisit bits of
        // the array in any order).
        let d = 7usize;
        let nodes = 5usize;
        let (q, _, _, _) = vectors(d);
        let mut lo = Vec::with_capacity(nodes * d);
        let mut hi = Vec::with_capacity(nodes * d);
        let mut a = Vec::with_capacity(nodes * d);
        for i in 0..nodes * d {
            let t = i as f64 * 0.41;
            lo.push(t.sin() * 2.0 - 1.0);
            hi.push(t.sin() * 2.0 - 1.0 + (t.cos().abs() + 0.1));
            a.push((t * 1.7).cos() * 3.0);
        }
        let ids: [u32; 7] = [3, 0, 4, 1, 1, 2, 0];

        let mut got = Vec::new();
        rect_dist_nodes::<true, _>(&q, &lo, &hi, &a, &ids, |mn, mx, qa| got.push((mn, mx, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = rect_dist::<true>(&q, &lo[s..s + d], &hi[s..s + d], &a[s..s + d]);
            assert_eq!(got[k], want, "rect_dist_nodes id {id}");
        }

        let mut got = Vec::new();
        rect_ip_nodes::<false, _>(&q, &lo, &hi, &[], &ids, |mn, mx, qa| got.push((mn, mx, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = rect_ip::<false>(&q, &lo[s..s + d], &hi[s..s + d], &[]);
            assert_eq!(got[k], want, "rect_ip_nodes id {id}");
        }

        let mut got = Vec::new();
        ball_dist_nodes::<true, _>(&q, &lo, &a, &ids, |d2, qa| got.push((d2, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = ball_dist::<true>(&q, &lo[s..s + d], &a[s..s + d]);
            assert_eq!(got[k], want, "ball_dist_nodes id {id}");
        }

        let mut got = Vec::new();
        ball_ip_nodes::<false, _>(&q, &lo, &[], &ids, |qc, qa| got.push((qc, qa)));
        for (k, &id) in ids.iter().enumerate() {
            let s = id as usize * d;
            let want = ball_ip::<false>(&q, &lo[s..s + d], &[]);
            assert_eq!(got[k], want, "ball_ip_nodes id {id}");
        }

        // Empty frontier: no emissions.
        rect_dist_nodes::<true, _>(&q, &lo, &hi, &a, &[], |_, _, _| {
            panic!("emit on empty frontier")
        });
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(rect_dist::<true>(&[], &[], &[], &[]), (0.0, 0.0, 0.0));
        assert_eq!(rect_ip::<false>(&[], &[], &[], &[]), (0.0, 0.0, 0.0));
        assert_eq!(ball_dist::<true>(&[], &[], &[]), (0.0, 0.0));
        assert_eq!(ball_ip::<false>(&[], &[], &[]), (0.0, 0.0));
    }
}
