//! Geometric substrate for the KARL kernel-aggregation library.
//!
//! This crate provides the low-level building blocks shared by the index
//! structures and the bound functions:
//!
//! * [`PointSet`] — a dense, row-major collection of `d`-dimensional points.
//! * [`Rect`] — axis-aligned minimum bounding rectangles with
//!   `mindist`/`maxdist` and inner-product range queries.
//! * [`Ball`] — bounding balls with the same query surface.
//! * [`BoundingShape`] — the trait both shapes implement, so index nodes and
//!   bound functions can be written once for either tree family.
//!
//! All distance work is done on squared Euclidean distances to avoid
//! unnecessary square roots; the KARL bound machinery consumes
//! `γ · dist²` directly.
//!
//! The hot reductions run on a runtime-dispatched SIMD backend
//! ([`simd`]) with a bitwise determinism contract: the scalar and vector
//! paths produce identical bits, so the backend choice (`KARL_SIMD`)
//! can never change an answer.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod ball;
pub mod buf;
pub mod dist;
pub mod error;
pub mod fused;
pub mod points;
pub mod rect;
pub mod simd;

pub use ball::Ball;
pub use buf::{AlignedBytes, AlignedVec, Buf, Pod, ARENA_ALIGN};
pub use dist::{dist2, dot, norm2};
pub use error::GeomError;
pub use fused::{
    ball_ball_dist, ball_ball_dist_nodes, ball_ball_ip, ball_ball_ip_nodes, ball_dist,
    ball_dist_nodes, ball_ip, ball_ip_nodes, rect_dist, rect_dist_nodes, rect_ip, rect_ip_nodes,
    rect_rect_dist, rect_rect_dist_nodes, rect_rect_ip, rect_rect_ip_nodes, BallQueryNode,
    RectQueryNode,
};
pub use points::PointSet;
pub use rect::Rect;
pub use simd::{backend, backend_name, set_backend, SimdBackend, SimdChoice, KARL_SIMD_ENV};

/// A bounding volume that can answer the range queries the KARL bound
/// functions need.
///
/// For a query point `q` and any point `p` inside the shape it must hold
/// that:
///
/// * `mindist2(q) <= dist(q, p)^2 <= maxdist2(q)`
/// * `ip_min(q) <= q · p <= ip_max(q)`
pub trait BoundingShape {
    /// Squared minimum Euclidean distance from `q` to any point in the shape.
    fn mindist2(&self, q: &[f64]) -> f64;
    /// Squared maximum Euclidean distance from `q` to any point in the shape.
    fn maxdist2(&self, q: &[f64]) -> f64;
    /// Minimum inner product between `q` and any point in the shape.
    fn ip_min(&self, q: &[f64]) -> f64;
    /// Maximum inner product between `q` and any point in the shape.
    fn ip_max(&self, q: &[f64]) -> f64;
    /// Dimensionality of the shape.
    fn dims(&self) -> usize;
}
