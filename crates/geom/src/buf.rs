//! 64-byte-aligned byte arenas and dual-backed typed buffers.
//!
//! The zero-copy persistent index (`karl_tree::persist`) loads an entire
//! on-disk image with **one** bulk read into an [`AlignedBytes`] arena and
//! then hands out typed views into it. [`Buf<T>`] is the buffer type that
//! makes this transparent to the rest of the library: it either owns a
//! plain `Vec<T>` (the build path — nothing changes for freshly built
//! indexes) or borrows a `[T]` window out of a shared arena (the load
//! path — zero per-element work). Both flavors deref to `&[T]`, so every
//! consumer keeps slice semantics.
//!
//! Why 64 bytes: it is a multiple of every element alignment we store
//! (`f64`/`u64`/`u32`/`u16`/`u8`), matches the cache-line size of every
//! x86-64/aarch64 part we target, and lets the on-disk format guarantee
//! that a section copied verbatim into an arena is correctly aligned for
//! its element type without per-section fixups.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::Arc;

/// Arena alignment (bytes): one cache line, a multiple of every `Pod`
/// element alignment.
pub const ARENA_ALIGN: usize = 64;

/// Marker for element types that are valid for **any** bit pattern, so a
/// byte region read from disk may be reinterpreted as a slice of them.
///
/// # Safety
/// Implementors must be plain-old-data: no padding, no niches, no drop
/// glue, valid for every bit pattern. The trait is sealed to the built-in
/// numeric types the frozen index stores.
pub unsafe trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for u64 {}
    impl Sealed for u32 {}
    impl Sealed for u16 {}
    impl Sealed for u8 {}
}

// SAFETY: primitive floats and unsigned integers have no padding, no
// niches, no drop glue, and every bit pattern is a valid value.
unsafe impl Pod for f64 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}
// SAFETY: as above.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u16 {}
// SAFETY: as above.
unsafe impl Pod for u8 {}

enum Backing {
    /// Heap allocation of `layout` (empty arenas carry a dangling pointer
    /// and no layout).
    Heap(Option<Layout>),
    /// A region established by `mmap(2)`; unmapped on drop.
    #[cfg(feature = "mmap")]
    Mmap,
}

/// A fixed-size, 64-byte-aligned byte buffer.
///
/// Created mutable (filled once, e.g. by `File::read_exact`), then frozen
/// behind an `Arc` so any number of [`Buf`] views can borrow windows of it.
pub struct AlignedBytes {
    ptr: NonNull<u8>,
    len: usize,
    backing: Backing,
}

// SAFETY: the arena is plain memory with no interior mutability; views
// only read, so sharing and sending across threads is sound.
unsafe impl Send for AlignedBytes {}
// SAFETY: as above.
unsafe impl Sync for AlignedBytes {}

impl AlignedBytes {
    /// Allocates a zero-filled arena of `len` bytes at [`ARENA_ALIGN`].
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: NonNull::<u64>::dangling().cast(),
                len: 0,
                backing: Backing::Heap(None),
            };
        }
        let layout = Layout::from_size_align(len, ARENA_ALIGN).expect("arena layout");
        // SAFETY: layout has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout)
        };
        Self {
            ptr,
            len,
            backing: Backing::Heap(Some(layout)),
        }
    }

    /// Maps `len` bytes of the open file `fd` read-only starting at offset
    /// zero. The mapping is page-aligned (pages are ≥ [`ARENA_ALIGN`]) and
    /// released on drop. Only offered on Linux via direct syscalls so the
    /// workspace stays registry-free.
    #[cfg(feature = "mmap")]
    pub fn map_file(fd: std::os::fd::RawFd, len: usize) -> std::io::Result<Self> {
        if len == 0 {
            return Ok(Self {
                ptr: NonNull::<u64>::dangling().cast(),
                len: 0,
                backing: Backing::Heap(None),
            });
        }
        let addr = mmap::map_readonly(fd, len)?;
        Ok(Self {
            ptr: NonNull::new(addr as *mut u8).expect("mmap returned null"),
            len,
            backing: Backing::Mmap,
        })
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole arena as a byte slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe our own allocation (or a dangling
        // pointer with len 0, which from_raw_parts permits).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable access to the whole arena, for filling it after allocation.
    /// Requires unique ownership (before the arena is wrapped in an `Arc`).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBytes").field("len", &self.len).finish()
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        match self.backing {
            Backing::Heap(Some(layout)) => {
                // SAFETY: allocated with exactly this layout in `zeroed`.
                unsafe { dealloc(self.ptr.as_ptr(), layout) }
            }
            Backing::Heap(None) => {}
            #[cfg(feature = "mmap")]
            Backing::Mmap => mmap::unmap(self.ptr.as_ptr(), self.len),
        }
    }
}

/// Direct `mmap`/`munmap` syscalls (Linux x86-64 / aarch64 only) so the
/// optional `mmap` feature adds no registry dependency.
#[cfg(feature = "mmap")]
mod mmap {
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    unsafe fn sys_mmap(len: usize, fd: usize) -> isize {
        let ret: isize;
        // SAFETY: mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0); x86-64
        // syscall ABI clobbers rcx/r11 only.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9usize => ret, // __NR_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
        let ret: isize;
        // SAFETY: munmap(addr, len).
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11usize => ret, // __NR_munmap
                in("rdi") addr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(all(target_os = "linux", target_arch = "aarch64"))]
    unsafe fn sys_mmap(len: usize, fd: usize) -> isize {
        let ret: isize;
        // SAFETY: mmap via svc 0; aarch64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 222usize, // __NR_mmap
                inlateout("x0") 0usize => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd,
                in("x5") 0usize,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(all(target_os = "linux", target_arch = "aarch64"))]
    unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
        let ret: isize;
        // SAFETY: munmap via svc 0.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 215usize, // __NR_munmap
                inlateout("x0") addr => ret,
                in("x1") len,
                options(nostack)
            );
        }
        ret
    }

    pub fn map_readonly(fd: std::os::fd::RawFd, len: usize) -> std::io::Result<usize> {
        // SAFETY: requests a fresh read-only private mapping of an open fd.
        let ret = unsafe { sys_mmap(len, fd as usize) };
        if (-4095..0).contains(&ret) {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub fn unmap(addr: *mut u8, len: usize) {
        // SAFETY: addr/len came from a successful map_readonly.
        let _ = unsafe { sys_munmap(addr as usize, len) };
    }
}

/// A growable, always-[`ARENA_ALIGN`]-aligned vector of `Pod` elements.
///
/// The owned counterpart of an arena view: freshly **built** buffers get
/// the same 64-byte base alignment the zero-copy **load** path guarantees,
/// so the SIMD kernels see identically-placed data either way. Grows by
/// doubling like `Vec`; elements are `Pod`, so reallocation is a plain
/// byte copy and dropping never runs element destructors.
pub struct AlignedVec<T: Pod> {
    bytes: AlignedBytes,
    len: usize,
    _elem: std::marker::PhantomData<T>,
}

impl<T: Pod> AlignedVec<T> {
    /// An empty vector (no allocation until the first push).
    pub fn new() -> Self {
        Self {
            bytes: AlignedBytes::zeroed(0),
            len: 0,
            _elem: std::marker::PhantomData,
        }
    }

    /// An empty vector with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            bytes: AlignedBytes::zeroed(cap * std::mem::size_of::<T>()),
            len: 0,
            _elem: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of elements the current allocation can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.bytes.len() / std::mem::size_of::<T>()
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: the first `len * size_of::<T>()` bytes of the arena were
        // written as `T` values (or zeroed, also valid — T is Pod); the
        // arena base is 64-byte aligned, a multiple of every Pod align.
        unsafe { std::slice::from_raw_parts(self.bytes.as_slice().as_ptr().cast::<T>(), self.len) }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as `as_slice`, with uniqueness from `&mut self`.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.bytes.as_mut_slice().as_mut_ptr().cast::<T>(),
                self.len,
            )
        }
    }

    /// Ensures room for `extra` more elements, doubling on growth so
    /// repeated pushes stay amortized O(1).
    pub fn reserve(&mut self, extra: usize) {
        let needed = self.len.checked_add(extra).expect("capacity overflow");
        if needed <= self.capacity() {
            return;
        }
        let new_cap = needed.max(self.capacity() * 2).max(8);
        let mut bytes = AlignedBytes::zeroed(new_cap * std::mem::size_of::<T>());
        let used = self.len * std::mem::size_of::<T>();
        bytes.as_mut_slice()[..used].copy_from_slice(&self.bytes.as_slice()[..used]);
        self.bytes = bytes;
    }

    /// Appends one element.
    pub fn push(&mut self, value: T) {
        self.reserve(1);
        let len = self.len;
        self.len += 1;
        // The new slot is within capacity and zero-initialized, so the
        // extended slice view is valid before the write.
        self.as_mut_slice()[len] = value;
    }

    /// Appends all elements of `values`.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.reserve(values.len());
        let len = self.len;
        self.len += values.len();
        self.as_mut_slice()[len..].copy_from_slice(values);
    }

    /// Removes all elements (keeps the allocation).
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl<T: Pod> Deref for AlignedVec<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> std::ops::DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Pod> From<Vec<T>> for AlignedVec<T> {
    fn from(v: Vec<T>) -> Self {
        let mut out = Self::with_capacity(v.capacity());
        out.extend_from_slice(&v);
        out
    }
}

impl<T: Pod> From<&[T]> for AlignedVec<T> {
    fn from(v: &[T]) -> Self {
        let mut out = Self::with_capacity(v.len());
        out.extend_from_slice(v);
        out
    }
}

impl<T: Pod> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from(self.as_slice())
    }
}

impl<T: Pod + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

enum Repr<T: Pod> {
    Owned(AlignedVec<T>),
    View {
        arena: Arc<AlignedBytes>,
        byte_off: usize,
        len: usize,
    },
}

/// A typed buffer that is either an owned `Vec<T>` (build path) or a
/// borrowed window of a shared [`AlignedBytes`] arena (zero-copy load
/// path). Both deref to `&[T]`; mutation (`push`/`extend_from_slice`)
/// transparently converts a view into an owned copy first.
pub struct Buf<T: Pod> {
    repr: Repr<T>,
}

impl<T: Pod> Buf<T> {
    /// An empty owned buffer.
    pub fn new() -> Self {
        Self {
            repr: Repr::Owned(AlignedVec::new()),
        }
    }

    /// A zero-copy view of `len` elements starting `byte_off` bytes into
    /// `arena`. Returns `None` when the window is out of bounds or
    /// misaligned for `T` (the arena base is [`ARENA_ALIGN`]-aligned, so
    /// only the offset matters).
    pub fn view(arena: Arc<AlignedBytes>, byte_off: usize, len: usize) -> Option<Self> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_off.checked_add(bytes)?;
        if end > arena.len() || !byte_off.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Self {
            repr: Repr::View {
                arena,
                byte_off,
                len,
            },
        })
    }

    /// Whether this buffer borrows an arena (load path) rather than owning
    /// a `Vec` (build path).
    pub fn is_view(&self) -> bool {
        matches!(self.repr, Repr::View { .. })
    }

    /// Mutable owned-storage access, converting an arena view into an
    /// owned aligned copy on first use (copy-on-write).
    pub fn make_mut(&mut self) -> &mut AlignedVec<T> {
        if let Repr::View { .. } = self.repr {
            self.repr = Repr::Owned(AlignedVec::from(self.as_ref()));
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::View { .. } => unreachable!("just converted to owned"),
        }
    }

    /// Appends one element (converts a view to owned storage).
    pub fn push(&mut self, value: T) {
        self.make_mut().push(value);
    }

    /// Appends a slice (converts a view to owned storage).
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.make_mut().extend_from_slice(values);
    }
}

impl<T: Pod> Deref for Buf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::View {
                arena,
                byte_off,
                len,
            } => {
                // SAFETY: `view` validated that `byte_off` is in bounds
                // of the arena.
                let base = unsafe { arena.as_slice().as_ptr().add(*byte_off) };
                // SAFETY: `view` validated bounds and alignment; T is Pod
                // so any bit pattern is a valid value; the Arc keeps the
                // arena alive for the borrow's lifetime.
                unsafe { std::slice::from_raw_parts(base.cast::<T>(), *len) }
            }
        }
    }
}

impl<T: Pod> AsRef<[T]> for Buf<T> {
    #[inline]
    fn as_ref(&self) -> &[T] {
        self
    }
}

impl<T: Pod> From<Vec<T>> for Buf<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            repr: Repr::Owned(v.into()),
        }
    }
}

impl<T: Pod> From<AlignedVec<T>> for Buf<T> {
    fn from(v: AlignedVec<T>) -> Self {
        Self {
            repr: Repr::Owned(v),
        }
    }
}

impl<T: Pod> Default for Buf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> Clone for Buf<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Self {
                repr: Repr::Owned(v.clone()),
            },
            Repr::View {
                arena,
                byte_off,
                len,
            } => Self {
                repr: Repr::View {
                    arena: Arc::clone(arena),
                    byte_off: *byte_off,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod + PartialEq> PartialEq for Buf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Buf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_ref().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_arena_is_aligned_and_zero() {
        let arena = AlignedBytes::zeroed(200);
        assert_eq!(arena.len(), 200);
        assert_eq!(arena.as_slice().as_ptr() as usize % ARENA_ALIGN, 0);
        assert!(arena.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_arena_works() {
        let arena = AlignedBytes::zeroed(0);
        assert!(arena.is_empty());
        assert_eq!(arena.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn view_reads_typed_values_back() {
        let mut arena = AlignedBytes::zeroed(64 + 3 * 8);
        let vals = [1.5f64, -2.0, 3.25];
        for (i, v) in vals.iter().enumerate() {
            let b = v.to_ne_bytes();
            arena.as_mut_slice()[64 + i * 8..64 + (i + 1) * 8].copy_from_slice(&b);
        }
        let arena = Arc::new(arena);
        let buf = Buf::<f64>::view(Arc::clone(&arena), 64, 3).unwrap();
        assert!(buf.is_view());
        assert_eq!(&buf[..], &vals);
    }

    #[test]
    fn view_rejects_out_of_bounds_and_misaligned() {
        let arena = Arc::new(AlignedBytes::zeroed(64));
        assert!(Buf::<f64>::view(Arc::clone(&arena), 0, 9).is_none());
        assert!(Buf::<f64>::view(Arc::clone(&arena), 4, 1).is_none());
        assert!(Buf::<u32>::view(Arc::clone(&arena), 60, 1).is_some());
        assert!(Buf::<u8>::view(Arc::clone(&arena), 64, 0).is_some());
        assert!(Buf::<u8>::view(arena, usize::MAX, 2).is_none());
    }

    #[test]
    fn mutation_converts_view_to_owned() {
        let arena = Arc::new(AlignedBytes::zeroed(64));
        let mut buf = Buf::<u32>::view(arena, 0, 4).unwrap();
        assert!(buf.is_view());
        buf.push(7);
        assert!(!buf.is_view());
        assert_eq!(&buf[..], &[0, 0, 0, 0, 7]);
        buf.extend_from_slice(&[8, 9]);
        assert_eq!(buf.len(), 7);
    }

    #[test]
    fn aligned_vec_grows_and_round_trips() {
        let mut v = AlignedVec::<f64>::new();
        assert!(v.is_empty());
        for i in 0..100 {
            v.push(i as f64 * 0.5);
        }
        assert_eq!(v.len(), 100);
        assert!(v.capacity() >= 100);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as f64 * 0.5);
        }
        v.extend_from_slice(&[7.0, 8.0]);
        assert_eq!(v[101], 8.0);
        let c = v.clone();
        assert_eq!(c, v);
        v.as_mut_slice()[0] = -1.0;
        assert_eq!(v[0], -1.0);
        assert_eq!(c[0], 0.0);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn owned_and_view_buffers_are_both_cache_line_aligned() {
        // Build path: owned storage, grown incrementally.
        let mut owned = Buf::<f64>::new();
        for i in 0..33 {
            owned.push(i as f64);
        }
        assert!(!owned.is_view());
        assert_eq!(owned.as_ref().as_ptr() as usize % ARENA_ALIGN, 0);
        // From<Vec> conversion path.
        let converted: Buf<u32> = vec![1u32, 2, 3].into();
        assert_eq!(converted.as_ref().as_ptr() as usize % ARENA_ALIGN, 0);
        // Load path: zero-copy arena view at offset 0.
        let arena = Arc::new(AlignedBytes::zeroed(256));
        let view = Buf::<f64>::view(arena, 0, 4).unwrap();
        assert!(view.is_view());
        assert_eq!(view.as_ref().as_ptr() as usize % ARENA_ALIGN, 0);
        // COW conversion preserves alignment.
        let mut cow = view.clone();
        cow.push(1.0);
        assert!(!cow.is_view());
        assert_eq!(cow.as_ref().as_ptr() as usize % ARENA_ALIGN, 0);
    }

    #[test]
    fn owned_and_view_compare_by_contents() {
        let owned: Buf<u32> = vec![0u32, 0, 0].into();
        let arena = Arc::new(AlignedBytes::zeroed(12));
        let view = Buf::<u32>::view(arena, 0, 3).unwrap();
        assert_eq!(owned, view);
        assert_eq!(view.clone(), view);
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_arena_matches_file_contents() {
        use std::io::Write;
        use std::os::fd::AsRawFd;

        let dir = std::env::temp_dir().join("karl_geom_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arena.bin");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let arena = AlignedBytes::map_file(file.as_raw_fd(), payload.len()).unwrap();
        assert_eq!(arena.as_slice(), &payload[..]);
        drop(arena);
        std::fs::remove_file(&path).ok();
    }
}
