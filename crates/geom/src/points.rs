//! Dense row-major point storage.
//!
//! `PointSet` is the canonical in-memory representation of a dataset
//! throughout the library: a single flat `Vec<f64>` of `n * d` coordinates.
//! Keeping points contiguous keeps tree construction, leaf scans and the
//! O(d) aggregate evaluations cache-friendly, which matters because the
//! paper's throughput comparisons are memory-bandwidth bound.

use crate::buf::Buf;
use crate::dist::norm2;
use crate::error::GeomError;

/// A dense set of `n` points in `d` dimensions, stored row-major.
///
/// The coordinate storage is a [`Buf`], so a point set either owns its
/// buffer (the usual build path) or borrows a zero-copy window of a loaded
/// index arena; every accessor sees a plain `&[f64]` either way.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dims: usize,
    data: Buf<f64>,
}

impl PointSet {
    /// Creates a point set from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dims == 0` or if `data.len()` is not a multiple of `dims`.
    pub fn new(dims: usize, data: Vec<f64>) -> Self {
        Self::try_new(dims, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`new`](Self::new): rejects `dims == 0` and
    /// misaligned buffers with a typed [`GeomError`] instead of panicking.
    /// Non-finite coordinates are *not* rejected here (use
    /// [`check_finite`](Self::check_finite)) so adversarial inputs can be
    /// constructed for the validated entry points upstream.
    pub fn try_new(dims: usize, data: Vec<f64>) -> Result<Self, GeomError> {
        Self::try_from_buf(dims, data.into())
    }

    /// Like [`try_new`](Self::try_new) but accepts any [`Buf`] backing —
    /// the zero-copy entry point used when reattaching a loaded index
    /// arena as a point set.
    pub fn try_from_buf(dims: usize, data: Buf<f64>) -> Result<Self, GeomError> {
        if dims == 0 {
            return Err(GeomError::ZeroDims);
        }
        if !data.len().is_multiple_of(dims) {
            return Err(GeomError::MisalignedData {
                len: data.len(),
                dims,
            });
        }
        Ok(Self { dims, data })
    }

    /// Creates an empty point set with the given dimensionality.
    pub fn empty(dims: usize) -> Self {
        Self::new(dims, Vec::new())
    }

    /// Creates a point set from a slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `dims == 0`.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        Self::try_from_rows(rows).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating variant of [`from_rows`](Self::from_rows).
    pub fn try_from_rows(rows: &[Vec<f64>]) -> Result<Self, GeomError> {
        if rows.is_empty() {
            return Err(GeomError::EmptyRows);
        }
        let dims = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dims);
        for (index, row) in rows.iter().enumerate() {
            if row.len() != dims {
                return Err(GeomError::InconsistentRow {
                    index,
                    expected: dims,
                    got: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Self::try_new(dims, data)
    }

    /// Scans for the first NaN/±inf coordinate and reports it with its
    /// point index and dimension — the entry check the validated index
    /// builders run before touching the data.
    pub fn check_finite(&self) -> Result<(), GeomError> {
        for (index, p) in self.iter().enumerate() {
            for (dim, &value) in p.iter().enumerate() {
                if !value.is_finite() {
                    return Err(GeomError::NonFiniteCoordinate { index, dim, value });
                }
            }
        }
        Ok(())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of each point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow the `i`-th point as a coordinate slice.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        let start = i * self.dims;
        &self.data[start..start + self.dims]
    }

    /// Mutable access to the `i`-th point.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn point_mut(&mut self, i: usize) -> &mut [f64] {
        let start = i * self.dims;
        let dims = self.dims;
        &mut self.data.make_mut()[start..start + dims]
    }

    /// The raw flat coordinate buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if `p.len() != dims()`.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims, "pushed point has wrong dimensionality");
        self.data.extend_from_slice(p);
    }

    /// Whether the coordinate buffer borrows a loaded arena rather than
    /// owning its storage.
    #[inline]
    pub fn is_view(&self) -> bool {
        self.data.is_view()
    }

    /// Iterate over all points as coordinate slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dims)
    }

    /// Squared norms `‖p_i‖²` of all points, used to precompute the node
    /// aggregates of Lemma 2 and the LIBSVM-style scan.
    pub fn squared_norms(&self) -> Vec<f64> {
        self.iter().map(norm2).collect()
    }

    /// Builds a new set containing the points at `indices`, in order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.dims);
        for &i in indices {
            data.extend_from_slice(self.point(i));
        }
        Self::new(self.dims, data)
    }

    /// Per-dimension mean of the points. Returns zeros for an empty set.
    pub fn mean(&self) -> Vec<f64> {
        let mut mean = vec![0.0; self.dims];
        if self.is_empty() {
            return mean;
        }
        for p in self.iter() {
            for (m, x) in mean.iter_mut().zip(p) {
                *m += x;
            }
        }
        let inv = 1.0 / self.len() as f64;
        for m in &mut mean {
            *m *= inv;
        }
        mean
    }

    /// Per-dimension (population) standard deviation.
    pub fn std_dev(&self) -> Vec<f64> {
        let mean = self.mean();
        let mut var = vec![0.0; self.dims];
        if self.is_empty() {
            return var;
        }
        for p in self.iter() {
            for ((v, x), m) in var.iter_mut().zip(p).zip(&mean) {
                let diff = x - m;
                *v += diff * diff;
            }
        }
        let inv = 1.0 / self.len() as f64;
        for v in &mut var {
            *v = (*v * inv).sqrt();
        }
        var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointSet {
        PointSet::new(2, vec![0.0, 0.0, 1.0, 2.0, -3.0, 4.0])
    }

    #[test]
    fn len_and_dims() {
        let ps = sample();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dims(), 2);
        assert!(!ps.is_empty());
    }

    #[test]
    fn point_accessor() {
        let ps = sample();
        assert_eq!(ps.point(0), &[0.0, 0.0]);
        assert_eq!(ps.point(2), &[-3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn point_out_of_bounds_panics() {
        sample().point(3);
    }

    #[test]
    #[should_panic]
    fn misaligned_data_panics() {
        PointSet::new(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn zero_dims_panics() {
        PointSet::new(0, vec![]);
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let ps = PointSet::from_rows(&rows);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn push_appends() {
        let mut ps = PointSet::empty(2);
        assert!(ps.is_empty());
        ps.push(&[5.0, 6.0]);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.point(0), &[5.0, 6.0]);
    }

    #[test]
    fn squared_norms_match_points() {
        let ps = sample();
        assert_eq!(ps.squared_norms(), vec![0.0, 5.0, 25.0]);
    }

    #[test]
    fn select_reorders() {
        let ps = sample();
        let sel = ps.select(&[2, 0]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.point(0), &[-3.0, 4.0]);
        assert_eq!(sel.point(1), &[0.0, 0.0]);
    }

    #[test]
    fn mean_and_std() {
        let ps = PointSet::new(1, vec![1.0, 3.0]);
        assert_eq!(ps.mean(), vec![2.0]);
        assert_eq!(ps.std_dev(), vec![1.0]);
    }

    #[test]
    fn iter_yields_all_points() {
        let ps = sample();
        let pts: Vec<&[f64]> = ps.iter().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], &[1.0, 2.0]);
    }

    #[test]
    fn try_new_reports_structural_errors() {
        assert_eq!(
            PointSet::try_new(0, vec![]).unwrap_err(),
            GeomError::ZeroDims
        );
        assert_eq!(
            PointSet::try_new(2, vec![1.0, 2.0, 3.0]).unwrap_err(),
            GeomError::MisalignedData { len: 3, dims: 2 }
        );
        assert!(PointSet::try_from_rows(&[]).is_err());
        assert!(matches!(
            PointSet::try_from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(GeomError::InconsistentRow { index: 1, .. })
        ));
    }

    #[test]
    fn check_finite_locates_the_offender() {
        let ps = PointSet::new(2, vec![0.0, 1.0, 2.0, f64::NAN]);
        assert!(matches!(
            ps.check_finite(),
            Err(GeomError::NonFiniteCoordinate { index: 1, dim: 1, .. })
        ));
        assert!(sample().check_finite().is_ok());
    }
}
