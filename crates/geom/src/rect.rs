//! Axis-aligned minimum bounding rectangles (Definition 2 of the paper).

use crate::fused::{rect_ip_max_term, rect_ip_min_term, rect_max_term, rect_min_term};
use crate::points::PointSet;
use crate::BoundingShape;

/// An axis-aligned bounding rectangle `[lo_j, hi_j]` per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from explicit per-dimension bounds.
    ///
    /// # Panics
    /// Panics if the slices differ in length, are empty, or any `lo > hi`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "lo/hi dimensionality mismatch");
        assert!(!lo.is_empty(), "Rect requires at least one dimension");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "Rect interval inverted: lo {l} > hi {h}");
        }
        Self { lo, hi }
    }

    /// The minimum bounding rectangle of the points at `indices`.
    ///
    /// # Panics
    /// Panics if `indices` is empty or out of bounds.
    pub fn bounding(points: &PointSet, indices: &[usize]) -> Self {
        assert!(!indices.is_empty(), "bounding rect of an empty set");
        let be = crate::simd::backend();
        let mut lo = points.point(indices[0]).to_vec();
        let mut hi = lo.clone();
        for &i in &indices[1..] {
            crate::simd::min_max_update_with(be, &mut lo, &mut hi, points.point(i));
        }
        Self { lo, hi }
    }

    /// The minimum bounding rectangle of a contiguous index range
    /// `[start, end)` in `points`.
    pub fn bounding_range(points: &PointSet, start: usize, end: usize) -> Self {
        Self::bounding_range_scratch(points, start, end, &mut Vec::new())
    }

    /// Like [`Rect::bounding_range`], but sweeps through a caller-provided
    /// scratch buffer so a tree build constructing thousands of rectangles
    /// only allocates the exact-size `lo`/`hi` each node keeps. The scratch
    /// holds `lo` in `[..d]` and `hi` in `[d..2d]` between calls.
    pub fn bounding_range_scratch(
        points: &PointSet,
        start: usize,
        end: usize,
        scratch: &mut Vec<f64>,
    ) -> Self {
        assert!(start < end && end <= points.len(), "invalid range");
        let d = points.dims();
        let be = crate::simd::backend();
        scratch.clear();
        scratch.extend_from_slice(points.point(start));
        scratch.extend_from_slice(points.point(start));
        let (lo, hi) = scratch.split_at_mut(d);
        for i in start + 1..end {
            crate::simd::min_max_update_with(be, lo, hi, points.point(i));
        }
        Self {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        }
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether `p` lies inside the rectangle (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(x, (l, h))| l <= x && x <= h)
    }

    /// Side length of dimension `j`.
    #[inline]
    pub fn extent(&self, j: usize) -> f64 {
        self.hi[j] - self.lo[j]
    }

    /// The dimension with the largest extent — the split axis used by the
    /// kd-tree builder.
    pub fn widest_dim(&self) -> usize {
        let mut best = 0;
        let mut best_ext = self.extent(0);
        for j in 1..self.lo.len() {
            let ext = self.extent(j);
            if ext > best_ext {
                best = j;
                best_ext = ext;
            }
        }
        best
    }
}

/// Expands to a 4-wide blocked reduction of `$term(x, l, h)` over
/// `(q, lo, hi)` in the workspace's fixed summation order
/// `(acc0+acc1) + (acc2+acc3) + tail` — the same per-lane order as the
/// fused probes in [`crate::fused`], so single-output and fused bound
/// evaluation are bitwise identical.
macro_rules! rect_reduce {
    ($q:expr, $lo:expr, $hi:expr, $term:ident) => {{
        let q: &[f64] = $q;
        debug_assert_eq!(q.len(), $lo.len());
        let cq = q.chunks_exact(4);
        let cl = $lo.chunks_exact(4);
        let ch = $hi.chunks_exact(4);
        let (rq, rl, rh) = (cq.remainder(), cl.remainder(), ch.remainder());
        let mut acc = [0.0f64; 4];
        for ((xq, xl), xh) in cq.zip(cl).zip(ch) {
            acc[0] += $term(xq[0], xl[0], xh[0]);
            acc[1] += $term(xq[1], xl[1], xh[1]);
            acc[2] += $term(xq[2], xl[2], xh[2]);
            acc[3] += $term(xq[3], xl[3], xh[3]);
        }
        let mut tail = 0.0;
        for ((x, l), h) in rq.iter().zip(rl).zip(rh) {
            tail += $term(*x, *l, *h);
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }};
}

impl BoundingShape for Rect {
    #[inline]
    fn mindist2(&self, q: &[f64]) -> f64 {
        rect_reduce!(q, self.lo, self.hi, rect_min_term)
    }

    #[inline]
    fn maxdist2(&self, q: &[f64]) -> f64 {
        rect_reduce!(q, self.lo, self.hi, rect_max_term)
    }

    #[inline]
    fn ip_min(&self, q: &[f64]) -> f64 {
        rect_reduce!(q, self.lo, self.hi, rect_ip_min_term)
    }

    #[inline]
    fn ip_max(&self, q: &[f64]) -> f64 {
        rect_reduce!(q, self.lo, self.hi, rect_ip_max_term)
    }

    #[inline]
    fn dims(&self) -> usize {
        self.lo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{dist2, dot};
    use karl_testkit::prop_assert;
    use karl_testkit::props::vec_of;

    fn unit_square() -> Rect {
        Rect::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn bounding_covers_all_points() {
        let ps = PointSet::new(2, vec![0.0, 5.0, -1.0, 2.0, 3.0, 3.0]);
        let r = Rect::bounding(&ps, &[0, 1, 2]);
        assert_eq!(r.lo(), &[-1.0, 2.0]);
        assert_eq!(r.hi(), &[3.0, 5.0]);
        for p in ps.iter() {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn bounding_range_matches_bounding() {
        let ps = PointSet::new(2, vec![0.0, 5.0, -1.0, 2.0, 3.0, 3.0]);
        let a = Rect::bounding(&ps, &[0, 1, 2]);
        let b = Rect::bounding_range(&ps, 0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn mindist_zero_inside() {
        let r = unit_square();
        assert_eq!(r.mindist2(&[0.5, 0.5]), 0.0);
        assert_eq!(r.mindist2(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn mindist_outside() {
        let r = unit_square();
        assert_eq!(r.mindist2(&[2.0, 0.5]), 1.0);
        assert_eq!(r.mindist2(&[2.0, 2.0]), 2.0);
        assert_eq!(r.mindist2(&[-3.0, 0.5]), 9.0);
    }

    #[test]
    fn maxdist_from_origin() {
        let r = unit_square();
        assert_eq!(r.maxdist2(&[0.0, 0.0]), 2.0);
        assert_eq!(r.maxdist2(&[0.5, 0.5]), 0.5);
    }

    #[test]
    fn ip_bounds_sign_handling() {
        let r = unit_square();
        // positive query: min at lo, max at hi
        assert_eq!(r.ip_min(&[1.0, 2.0]), 0.0);
        assert_eq!(r.ip_max(&[1.0, 2.0]), 3.0);
        // negative query coordinate flips which corner is extremal
        assert_eq!(r.ip_min(&[-1.0, 2.0]), -1.0);
        assert_eq!(r.ip_max(&[-1.0, 2.0]), 2.0);
    }

    #[test]
    fn widest_dim_picks_largest_extent() {
        let r = Rect::new(vec![0.0, 0.0, 0.0], vec![1.0, 5.0, 2.0]);
        assert_eq!(r.widest_dim(), 1);
    }

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn degenerate_rect_is_a_point() {
        let r = Rect::new(vec![2.0, 3.0], vec![2.0, 3.0]);
        let q = [0.0, 0.0];
        assert_eq!(r.mindist2(&q), r.maxdist2(&q));
        assert_eq!(r.mindist2(&q), 13.0);
        assert_eq!(r.ip_min(&q), r.ip_max(&q));
    }

    karl_testkit::props! {
        /// For random rectangles, queries and points inside the rectangle,
        /// the distance and inner-product bounds must bracket the exact
        /// values (the correctness contract of `BoundingShape`).
        #[test]
        fn prop_rect_bounds_bracket_truth(
            corners in vec_of((-50.0f64..50.0, -50.0f64..50.0), 2..5),
            q in vec_of(-50.0f64..50.0, 2),
            frac in vec_of((0.0f64..=1.0, 0.0f64..=1.0), 1..6),
        ) {
            let rows: Vec<Vec<f64>> = corners.iter().map(|&(a, b)| vec![a, b]).collect();
            let ps = PointSet::from_rows(&rows);
            let idx: Vec<usize> = (0..ps.len()).collect();
            let r = Rect::bounding(&ps, &idx);
            for (fx, fy) in frac {
                let p = [
                    r.lo()[0] + fx * r.extent(0),
                    r.lo()[1] + fy * r.extent(1),
                ];
                prop_assert!(r.contains(&p));
                let d2 = dist2(&q, &p);
                prop_assert!(r.mindist2(&q) <= d2 + 1e-9);
                prop_assert!(r.maxdist2(&q) + 1e-9 >= d2);
                let ip = dot(&q, &p);
                prop_assert!(r.ip_min(&q) <= ip + 1e-9);
                prop_assert!(r.ip_max(&q) + 1e-9 >= ip);
            }
        }
    }
}
