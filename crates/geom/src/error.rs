//! Typed rejection for malformed point data at the geometry layer.

use std::fmt;

/// Structural or numeric defects a [`crate::PointSet`] entry check can
/// report. `karl_core` converts these into its own `KarlError` taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeomError {
    /// `dims == 0`: points must have at least one coordinate.
    ZeroDims,
    /// The flat buffer length is not a multiple of the dimensionality.
    MisalignedData {
        /// Buffer length supplied.
        len: usize,
        /// Dimensionality supplied.
        dims: usize,
    },
    /// `from_rows` was given no rows at all.
    EmptyRows,
    /// A row's length disagrees with the first row's.
    InconsistentRow {
        /// Index of the offending row.
        index: usize,
        /// Expected row length (from row 0).
        expected: usize,
        /// Actual row length.
        got: usize,
    },
    /// A coordinate is NaN/±inf.
    NonFiniteCoordinate {
        /// Point index.
        index: usize,
        /// Coordinate dimension.
        dim: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::ZeroDims => write!(f, "PointSet requires dims > 0"),
            GeomError::MisalignedData { len, dims } => {
                write!(f, "data length {len} is not a multiple of dims {dims}")
            }
            GeomError::EmptyRows => write!(f, "from_rows requires at least one row"),
            GeomError::InconsistentRow {
                index,
                expected,
                got,
            } => write!(f, "row {index} has length {got}, expected {expected}"),
            GeomError::NonFiniteCoordinate { index, dim, value } => {
                write!(f, "point {index} has non-finite coordinate {value} at dim {dim}")
            }
        }
    }
}

impl std::error::Error for GeomError {}
