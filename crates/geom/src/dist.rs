//! Dense vector primitives: squared distance, dot product, squared norm.
//!
//! These are the innermost loops of every scan and every bound evaluation,
//! so they are written as straight slice iteration that LLVM auto-vectorizes.

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let diff = x - y;
        acc += diff * diff;
    }
    acc
}

/// Inner (dot) product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in a {
        acc += x * x;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_simple() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dist2_zero_for_identical_points() {
        let p = [1.5, -2.25, 7.0];
        assert_eq!(dist2(&p, &p), 0.0);
    }

    #[test]
    fn dist2_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-4.0, 0.5, 9.0];
        assert_eq!(dist2(&a, &b), dist2(&b, &a));
    }

    #[test]
    fn dot_simple() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_with_zero_vector_is_zero() {
        assert_eq!(dot(&[0.0; 4], &[1.0, -2.0, 3.0, -4.0]), 0.0);
    }

    #[test]
    fn norm2_matches_self_dot() {
        let v = [1.0, -2.0, 2.0];
        assert_eq!(norm2(&v), dot(&v, &v));
        assert_eq!(norm2(&v), 9.0);
    }

    #[test]
    fn empty_slices_yield_zero() {
        assert_eq!(dist2(&[], &[]), 0.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn dist2_expansion_identity() {
        // dist²(a,b) = ‖a‖² - 2 a·b + ‖b‖² — the expansion used by the O(d)
        // aggregated bound evaluation (Lemma 2 of the paper).
        let a = [0.3, -1.7, 2.2, 0.0];
        let b = [5.5, 0.1, -0.4, 3.3];
        let lhs = dist2(&a, &b);
        let rhs = norm2(&a) - 2.0 * dot(&a, &b) + norm2(&b);
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
