//! Dense vector primitives: squared distance, dot product, squared norm.
//!
//! These are the innermost loops of every scan and every bound evaluation.
//! Each reduction runs 4-wide with four independent partial sums: a single
//! accumulator serializes every floating-point add behind the previous one
//! (4–5 cycle latency each), while four independent chains keep the loop
//! in SIMD registers with the adds pipelined. The summation order is fixed
//! — `(acc0+acc1) + (acc2+acc3) + tail` — so results are reproducible
//! run-to-run and thread-count-independent.
//!
//! The actual loops live in [`crate::simd`], which executes the canonical
//! blocked order either as explicit AVX2 vectors or as a portable scalar
//! backend; the two are bitwise identical, so these wrappers simply run on
//! the process-global backend.

use crate::simd;

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    simd::dist2_with(simd::backend(), a, b)
}

/// Inner (dot) product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    simd::dot_with(simd::backend(), a, b)
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    simd::norm2_with(simd::backend(), a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_simple() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dist2_zero_for_identical_points() {
        let p = [1.5, -2.25, 7.0];
        assert_eq!(dist2(&p, &p), 0.0);
    }

    #[test]
    fn dist2_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-4.0, 0.5, 9.0];
        assert_eq!(dist2(&a, &b), dist2(&b, &a));
    }

    #[test]
    fn dot_simple() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_with_zero_vector_is_zero() {
        assert_eq!(dot(&[0.0; 4], &[1.0, -2.0, 3.0, -4.0]), 0.0);
    }

    #[test]
    fn norm2_matches_self_dot() {
        let v = [1.0, -2.0, 2.0];
        assert_eq!(norm2(&v), dot(&v, &v));
        assert_eq!(norm2(&v), 9.0);
    }

    #[test]
    fn empty_slices_yield_zero() {
        assert_eq!(dist2(&[], &[]), 0.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn blocked_reduction_matches_scalar_reference_at_every_length() {
        // Exercise every remainder length around the 4-wide blocking.
        for n in 0..13usize {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 2.0).collect();
            let (mut d_ref, mut dot_ref, mut n_ref) = (0.0, 0.0, 0.0);
            for i in 0..n {
                let diff = a[i] - b[i];
                d_ref += diff * diff;
                dot_ref += a[i] * b[i];
                n_ref += a[i] * a[i];
            }
            assert!((dist2(&a, &b) - d_ref).abs() < 1e-12, "dist2 at n={n}");
            assert!((dot(&a, &b) - dot_ref).abs() < 1e-12, "dot at n={n}");
            assert!((norm2(&a) - n_ref).abs() < 1e-12, "norm2 at n={n}");
        }
    }

    #[test]
    fn dist2_expansion_identity() {
        // dist²(a,b) = ‖a‖² - 2 a·b + ‖b‖² — the expansion used by the O(d)
        // aggregated bound evaluation (Lemma 2 of the paper).
        let a = [0.3, -1.7, 2.2, 0.0];
        let b = [5.5, 0.1, -0.4, 3.3];
        let lhs = dist2(&a, &b);
        let rhs = norm2(&a) - 2.0 * dot(&a, &b) + norm2(&b);
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
