//! The testkit tests itself: pinned PRNG reference vectors, statistical
//! smoke checks, shrinker convergence, and a bit-reproducibility meta-test.
//! Everything seeded in the workspace keys off these bits — if one of the
//! pinned vectors ever changes, every seeded test's data silently changes
//! with it, so this file is the tripwire.

use karl_testkit::props::{self, bools, vec_of, Strategy};
use karl_testkit::rng::{seq::SliceRandom, splitmix64, Rng, RngCore, SeedableRng, StdRng};

/// SplitMix64 outputs for seed 0, matching the published reference
/// implementation (Steele, Lea & Flood; the same vector appears in the
/// xoshiro authors' test suite).
#[test]
fn splitmix64_reference_vector_seed0() {
    let mut state = 0u64;
    let got: Vec<u64> = (0..5).map(|_| splitmix64(&mut state)).collect();
    assert_eq!(
        got,
        vec![
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ]
    );
}

/// SplitMix64 for a non-zero seed, cross-checked against an independent
/// implementation of the reference algorithm.
#[test]
fn splitmix64_reference_vector_seed_0x42() {
    let mut state = 0x42u64;
    let got: Vec<u64> = (0..3).map(|_| splitmix64(&mut state)).collect();
    assert_eq!(
        got,
        vec![0x2C1C_719D_2C17_B759, 0xA211_B519_D9A0_9A1C, 0x747A_952A_1F10_BFF5]
    );
}

/// xoshiro256++ seeded via SplitMix64(0): the canonical construction,
/// cross-checked against an independent implementation.
#[test]
fn xoshiro256pp_reference_vector_seed0() {
    let mut rng = StdRng::seed_from_u64(0);
    let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            0x5317_5D61_490B_23DF,
            0x61DA_6F3D_C380_D507,
            0x5C0F_DF91_EC9A_7BFC,
            0x02EE_BF8C_3BBE_5E1A,
            0x7ECA_04EB_AF4A_5EEA,
        ]
    );
}

/// xoshiro256++ for an arbitrary seed, pinning the seeding path too.
#[test]
fn xoshiro256pp_reference_vector_seed_12345() {
    let mut rng = StdRng::seed_from_u64(12345);
    let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            0x8D94_8A82_DEF8_A568,
            0x3477_F953_7967_02A0,
            0x15CA_A2FC_E6DB_8D69,
            0x2CEF_8853_C20C_6DD0,
            0x43FF_3FFF_9C03_9CD9,
        ]
    );
}

/// The u64 → f64 conversion uses the 53-high-bit convention; pin it.
#[test]
fn f64_conversion_reference() {
    let mut rng = StdRng::seed_from_u64(12345);
    let got: Vec<f64> = (0..3).map(|_| rng.random::<f64>()).collect();
    let want = [0.5530478066930038, 0.20495565689034478, 0.08512324022636453];
    for (g, w) in got.iter().zip(want) {
        assert!((g - w).abs() < 1e-16, "got {g}, want {w}");
    }
}

#[test]
fn random_range_respects_bounds_and_hits_both_halves() {
    let mut rng = StdRng::seed_from_u64(7);
    let (mut lo_half, mut hi_half) = (0u32, 0u32);
    for _ in 0..2000 {
        let v = rng.random_range(-2.0..3.0);
        assert!((-2.0..3.0).contains(&v));
        if v < 0.5 {
            lo_half += 1;
        } else {
            hi_half += 1;
        }
    }
    // Both halves of the range must be hit roughly equally (coarse check).
    assert!(lo_half > 800 && hi_half > 800, "lo {lo_half} hi {hi_half}");
    for _ in 0..2000 {
        let v = rng.random_range(3usize..17);
        assert!((3..17).contains(&v));
    }
}

#[test]
fn random_bool_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(11);
    let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
    assert!((2_200..2_800).contains(&hits), "0.25-bool hit {hits}/10000");
}

#[test]
fn random_normal_moments() {
    let mut rng = StdRng::seed_from_u64(13);
    let n = 20_000;
    let samples: Vec<f64> = (0..n).map(|_| rng.random_normal()).collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    assert!(mean.abs() < 0.05, "mean {mean}");
    assert!((var - 1.0).abs() < 0.1, "variance {var}");
}

#[test]
fn shuffle_is_a_permutation_and_partial_shuffle_is_prefix_sample() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut v: Vec<usize> = (0..50).collect();
    v.shuffle(&mut rng);
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..50).collect::<Vec<_>>());

    let mut w: Vec<usize> = (0..50).collect();
    let (front, rest) = w.partial_shuffle(&mut rng, 10);
    assert_eq!(front.len(), 10);
    assert_eq!(rest.len(), 40);
    let mut all: Vec<usize> = front.iter().chain(rest.iter()).copied().collect();
    all.sort_unstable();
    assert_eq!(all, (0..50).collect::<Vec<_>>());
}

/// Meta-test: a seeded property run generates a bit-identical case
/// sequence across two executions (the replay contract).
#[test]
fn seeded_property_run_is_bit_reproducible() {
    use std::sync::Mutex;
    let collect = || {
        let log = Mutex::new(Vec::new());
        let strat = (0u64..1000, vec_of(-1.0f64..1.0, 1..8));
        let r = props::run_property_raw("meta_repro", &strat, 32, |(a, v)| {
            log.lock().unwrap().push((a, v));
        });
        assert!(r.is_ok());
        log.into_inner().unwrap()
    };
    let first = collect();
    let second = collect();
    assert_eq!(first.len(), 32);
    // Vec<f64> equality here is intentionally bitwise-by-value: the two
    // runs must generate the exact same floats, not merely close ones.
    assert_eq!(first, second);
}

/// Shrinker convergence: a threshold failure on an integer range must
/// shrink to the boundary counterexample, not a random large one.
#[test]
fn shrinker_converges_to_minimal_integer() {
    let strat = (0usize..10_000,);
    let fail = props::run_property_raw("meta_shrink_int", &strat, 64, |(n,)| {
        assert!(n <= 20, "exceeded threshold");
    })
    .expect_err("property must fail");
    assert_eq!(fail.shrunk.0, 21, "greedy shrink should land on the boundary");
    assert!(fail.message.contains("exceeded threshold"));
}

/// Shrinker convergence on vectors: length shrinks to the minimum that
/// still fails, and surviving elements shrink toward the lower bound.
#[test]
fn shrinker_converges_on_vectors() {
    let strat = (vec_of(0.0f64..100.0, 0..12),);
    let fail = props::run_property_raw("meta_shrink_vec", &strat, 64, |(v,)| {
        assert!(v.len() < 3, "too long");
    })
    .expect_err("property must fail");
    assert_eq!(fail.shrunk.0.len(), 3, "minimal failing length is 3");
    assert!(fail.shrunk.0.iter().all(|&x| x == 0.0), "elements should shrink to 0");
}

/// Boolean strategy shrinks true→false and the tuple shrinker composes.
#[test]
fn bool_and_tuple_shrinking() {
    let strat = (bools(), 0u32..50);
    let mut rng = StdRng::seed_from_u64(1);
    let v = strat.generate(&mut rng);
    for (b, n) in strat.shrink(&v) {
        // Every candidate changes exactly one component toward simpler.
        assert!((b != v.0) ^ (n != v.1));
        assert!(!b || b == v.0);
        assert!(n <= v.1);
    }
}

/// A passing property returns Ok and runs the advertised number of cases.
#[test]
fn passing_property_runs_all_cases() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let count = AtomicU32::new(0);
    let r = props::run_property_raw("meta_pass", &(0.0f64..1.0,), 25, |(x,)| {
        count.fetch_add(1, Ordering::Relaxed);
        assert!((0.0..1.0).contains(&x));
    });
    assert!(r.is_ok());
    assert_eq!(count.load(Ordering::Relaxed), 25);
}

/// Failure reports carry the base seed that replays the run.
#[test]
fn failure_reports_replayable_seed() {
    let fail = props::run_property_raw("meta_seed_report", &(0u64..100,), 64, |(n,)| {
        assert!(n < 1, "any nonzero fails");
    })
    .expect_err("property must fail");
    // No env override in this test process path ⇒ the default base seed.
    if std::env::var("KARL_TEST_SEED").is_err() {
        assert_eq!(fail.base_seed, props::DEFAULT_BASE_SEED);
    }
    assert_eq!(fail.shrunk.0, 1);
}

// The props! macro must expand to plain #[test] functions; exercise it
// end-to-end (these run as ordinary tests in this binary).
karl_testkit::props! {
    /// Interval arithmetic oracle: scaling then containment is consistent.
    #[test]
    fn prop_interval_scale_contains(x in -50.0f64..50.0, c in -3.0f64..3.0) {
        use karl_testkit::oracle::Interval;
        let iv = Interval::new(x.min(0.0), x.max(0.0));
        let scaled = iv.scale(c);
        karl_testkit::prop_assert!(scaled.contains(c * x, 1e-12));
    }

    /// naive_knn returns ascending distances and valid indices.
    #[test]
    fn prop_naive_knn_sorted(
        rows in vec_of(vec_of(-5.0f64..5.0, 3), 1..10),
        q in vec_of(-5.0f64..5.0, 3),
        k in 1usize..12,
    ) {
        let out = karl_testkit::oracle::naive_knn(
            rows.iter().map(|r| r.as_slice()), &q, k);
        karl_testkit::prop_assert!(out.len() == k.min(rows.len()));
        for w in out.windows(2) {
            karl_testkit::prop_assert!(w[0].1 <= w[1].1);
        }
        for (i, d2) in &out {
            karl_testkit::prop_assert!(*i < rows.len());
            let direct = karl_testkit::oracle::dist2_naive(&q, &rows[*i]);
            karl_testkit::prop_assert!((d2 - direct).abs() < 1e-12);
        }
    }
}
