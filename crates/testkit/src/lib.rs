//! Hermetic test substrate for the KARL workspace.
//!
//! Every crate in this workspace tests against this crate instead of
//! registry dev-dependencies (`rand`, `proptest`, `criterion`), so
//! `cargo build --release && cargo test -q` resolves and passes with the
//! network disabled. Four pieces:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding a
//!   xoshiro256++ core) with uniform ranges, Gaussian sampling and slice
//!   shuffling, API-compatible with the `rand` call sites it replaced.
//! * [`props`] — a minimal property-testing harness (the [`props!`] macro)
//!   with case generation, greedy failure shrinking and fixed-seed replay
//!   via the `KARL_TEST_SEED` environment variable.
//! * [`oracle`] — brute-force reference implementations (exact kernel
//!   sums, naive k-NN) and an interval checker used to verify the paper's
//!   soundness claims: KARL's bounds change *speed*, never *answers*.
//! * [`bench`] — a tiny wall-clock micro-benchmark timer with a
//!   Criterion-shaped API for the `criterion-benches`-gated bench targets.

//! * [`adversarial`] — a hostile-input generator (non-finite and denormal
//!   coordinates, zero/mixed-sign weights, extreme γ, duplicated points)
//!   with per-case verdict tags, for property-testing the validated
//!   constructors' typed rejections.

//! * [`serve_script`] — a deterministic scripted client for the serve
//!   loop's newline-delimited JSON protocol (string assembly only, so the
//!   dependency graph stays acyclic).

pub mod adversarial;
pub mod bench;
pub mod oracle;
pub mod props;
pub mod rng;
pub mod serve_script;
