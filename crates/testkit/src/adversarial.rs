//! Adversarial-input generator for the validated entry points.
//!
//! Produces point/weight/γ workloads that are deliberately hostile:
//! NaN/±inf coordinates, denormal coordinates, zero and mixed-sign
//! weights, duplicated points and extreme (but valid) smoothing
//! parameters. Each case carries an [`Expected`] tag saying whether a
//! validated constructor must accept it — and if not, *which defect it
//! must report first*. The testkit is dependency-free, so the tag
//! describes the defect structurally; the property test downstream maps
//! it onto the concrete error enum.

use crate::rng::{Rng, SeedableRng, StdRng};

/// What a validated constructor must do with a generated case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Structurally valid: the constructor must accept, and query results
    /// must match the brute-force oracle.
    Accept,
    /// First defect in scan order is a non-finite coordinate at
    /// `(index, dim)`.
    NonFinitePoint {
        /// Point index of the first offender.
        index: usize,
        /// Dimension of the first offender.
        dim: usize,
    },
    /// First defect is a non-finite weight at `index` (all coordinates
    /// are finite).
    NonFiniteWeight {
        /// Weight index of the first offender.
        index: usize,
    },
    /// Coordinates and weights are finite but every weight is exactly
    /// zero.
    AllZeroWeights,
}

/// One adversarial workload: row-major points, weights, a Gaussian-style
/// `γ`, and the verdict a validated constructor must reach.
#[derive(Debug, Clone)]
pub struct AdversarialCase {
    /// Dimensionality of the points.
    pub dims: usize,
    /// Row-major coordinate buffer (`n · dims` values).
    pub data: Vec<f64>,
    /// Per-point weights (`n` values).
    pub weights: Vec<f64>,
    /// A finite, positive smoothing parameter — possibly extreme (tiny or
    /// huge) but always *valid*, so γ never masks the data verdict.
    pub gamma: f64,
    /// The verdict.
    pub expected: Expected,
}

impl AdversarialCase {
    /// Number of points in the case.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the case holds no points (never — the generator emits at
    /// least four).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Generates one adversarial case from `seed`. Roughly half the cases are
/// structurally valid but numerically nasty (denormals, duplicates, zero
/// and mixed-sign weights, extreme γ); the rest carry exactly one class
/// of rejectable defect, possibly at several sites, with the tag naming
/// the first site in `(index, dim)` scan order.
pub fn adversarial_case(seed: u64) -> AdversarialCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = rng.random_range(1..4usize);
    let n = rng.random_range(4..24usize);
    let mut data = Vec::with_capacity(n * dims);
    for _ in 0..n * dims {
        let v = match rng.random_range(0..10u32) {
            // Denormal magnitudes: finite, must be accepted.
            0 => f64::MIN_POSITIVE / 4.0,
            // Large but finite magnitudes. Kept at 1e3: beyond that the
            // norm-identity distance (‖q‖² + ‖p‖² − 2⟨q,p⟩) and the direct
            // squared difference legitimately diverge past oracle tolerance
            // through catastrophic cancellation — a conditioning property of
            // the inputs, not a validation defect.
            1 => 1e3,
            _ => rng.random_range(-3.0..3.0),
        };
        data.push(v);
    }
    // Duplicated points: copy an earlier row over a later one.
    if rng.random_bool(0.5) {
        let src = rng.random_range(0..n / 2);
        let dst = rng.random_range(n / 2..n);
        for d in 0..dims {
            data[dst * dims + d] = data[src * dims + d];
        }
    }
    let mut weights: Vec<f64> = (0..n)
        .map(|_| {
            let w = rng.random_range(0.1..2.0);
            match rng.random_range(0..4u32) {
                0 => -w,  // mixed signs
                1 => 0.0, // scattered zeros
                _ => w,
            }
        })
        .collect();
    // Keep at least one nonzero weight so "Accept" cases are buildable.
    if weights.iter().all(|&w| w == 0.0) {
        weights[0] = 1.0;
    }
    let gamma = match rng.random_range(0..4u32) {
        0 => 1e-300, // tiny but valid
        // Large but valid. γ multiplies any floating-point residue in the
        // squared distance, so 1e300 would turn benign ulp-level
        // cancellation on duplicated points into a 0-vs-1 kernel flip;
        // 50 keeps the oracle comparison meaningful while still pushing
        // most kernel values into underflow.
        1 => 50.0,
        _ => rng.random_range(0.1..2.0),
    };

    let expected = match rng.random_range(0..6u32) {
        // Corrupt one or more coordinates with NaN/±inf.
        0 | 1 => {
            let hits = rng.random_range(1..3usize);
            let mut first: Option<(usize, usize)> = None;
            for _ in 0..hits {
                let index = rng.random_range(0..n);
                let dim = rng.random_range(0..dims);
                data[index * dims + dim] = match rng.random_range(0..3u32) {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => f64::NEG_INFINITY,
                };
                first = Some(match first {
                    Some(f) if f <= (index, dim) => f,
                    _ => (index, dim),
                });
            }
            let (index, dim) = first.expect("at least one corruption");
            Expected::NonFinitePoint { index, dim }
        }
        // Corrupt one weight (coordinates stay finite).
        2 => {
            let index = rng.random_range(0..n);
            weights[index] = if rng.random_bool(0.5) {
                f64::NAN
            } else {
                f64::INFINITY
            };
            Expected::NonFiniteWeight { index }
        }
        // Zero out every weight.
        3 => {
            weights.iter_mut().for_each(|w| *w = 0.0);
            Expected::AllZeroWeights
        }
        _ => Expected::Accept,
    };
    AdversarialCase {
        dims,
        data,
        weights,
        gamma,
        expected,
    }
}

/// Generates one *shape-edge* case from `seed`: tiny point counts
/// (`n = 1..=7`, every tail length of the 4-wide SIMD blocking) crossed
/// with odd dimensionalities (1, 3, 5, 7 — every coordinate tail), with
/// the same corruption classes as [`adversarial_case`] so boundary
/// validation is exercised exactly where the vector kernels switch to
/// their scalar tails. Weight magnitudes stay mixed-sign.
pub fn shape_edge_case(seed: u64) -> AdversarialCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a_5a5a_5a5a_5a5a);
    let dims = [1usize, 3, 5, 7][rng.random_range(0..4usize)];
    let n = rng.random_range(1..8usize);
    let mut data: Vec<f64> = (0..n * dims)
        .map(|_| rng.random_range(-3.0..3.0))
        .collect();
    let mut weights: Vec<f64> = (0..n)
        .map(|_| {
            let w = rng.random_range(0.1..2.0);
            if rng.random_bool(0.35) {
                -w
            } else {
                w
            }
        })
        .collect();
    let gamma = rng.random_range(0.1..2.0);
    let expected = match rng.random_range(0..5u32) {
        0 => {
            let index = rng.random_range(0..n);
            let dim = rng.random_range(0..dims);
            data[index * dims + dim] = match rng.random_range(0..3u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            Expected::NonFinitePoint { index, dim }
        }
        1 => {
            let index = rng.random_range(0..n);
            weights[index] = f64::NAN;
            Expected::NonFiniteWeight { index }
        }
        2 => {
            weights.iter_mut().for_each(|w| *w = 0.0);
            Expected::AllZeroWeights
        }
        _ => Expected::Accept,
    };
    AdversarialCase {
        dims,
        data,
        weights,
        gamma,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_edge_generator_covers_every_tail_and_odd_dim() {
        let mut ns = [false; 8];
        let mut ds = std::collections::BTreeSet::new();
        for seed in 0..300 {
            let a = shape_edge_case(seed);
            let b = shape_edge_case(seed);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.data), bits(&b.data), "seed {seed} not deterministic");
            assert_eq!(a.expected, b.expected);
            assert!((1..=7).contains(&a.len()));
            assert!(a.dims % 2 == 1 && a.dims <= 7);
            assert_eq!(a.data.len(), a.len() * a.dims);
            ns[a.len()] = true;
            ds.insert(a.dims);
        }
        assert!(ns[1..=7].iter().all(|&x| x), "every n in 1..=7 generated");
        assert_eq!(ds.into_iter().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn generator_is_deterministic_and_tags_match_contents() {
        let mut seen_accept = false;
        let mut seen_reject = false;
        for seed in 0..200 {
            let a = adversarial_case(seed);
            let b = adversarial_case(seed);
            // Bitwise comparison: NaN payloads must reproduce too.
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.data), bits(&b.data), "seed {seed} not deterministic");
            assert_eq!(a.expected, b.expected);
            assert!(a.len() >= 4 && a.data.len() == a.len() * a.dims);
            assert!(a.gamma.is_finite() && a.gamma > 0.0);
            match a.expected {
                Expected::Accept => {
                    seen_accept = true;
                    assert!(a.data.iter().all(|v| v.is_finite()));
                    assert!(a.weights.iter().all(|w| w.is_finite()));
                    assert!(a.weights.iter().any(|&w| w != 0.0));
                }
                Expected::NonFinitePoint { index, dim } => {
                    seen_reject = true;
                    assert!(!a.data[index * a.dims + dim].is_finite());
                    // It is the *first* offender in scan order.
                    let first = a
                        .data
                        .iter()
                        .position(|v| !v.is_finite())
                        .expect("tagged case has an offender");
                    assert_eq!(first, index * a.dims + dim);
                }
                Expected::NonFiniteWeight { index } => {
                    seen_reject = true;
                    assert!(a.data.iter().all(|v| v.is_finite()));
                    assert!(!a.weights[index].is_finite());
                }
                Expected::AllZeroWeights => {
                    seen_reject = true;
                    assert!(a.weights.iter().all(|&w| w == 0.0));
                }
            }
        }
        assert!(seen_accept && seen_reject, "generator must mix verdicts");
    }
}
