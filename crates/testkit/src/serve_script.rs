//! A deterministic scripted client for the serve-loop protocol.
//!
//! [`ScriptBuilder`] assembles the newline-delimited JSON request
//! transcript a `karl_core::serve::Server` (or a `karl serve --stdio`
//! process) consumes, and hands out the request ids as it goes so tests
//! can assert on the matching response lines. It builds *strings only* —
//! this crate sits below `karl-core` in the dependency graph, so the
//! protocol knowledge lives here as formatting, not as types.
//!
//! Floats are written in Rust's shortest round-trip form (`{}`), the
//! same form the server uses on the way out, so a scripted coordinate
//! and its echo can be compared bit-for-bit. Non-finite coordinates are
//! written as the wire dialect's `NaN` / `Infinity` / `-Infinity`
//! tokens — scripting a poisoned request is just pushing a NaN.

use std::fmt::Write as _;

use crate::rng::{Rng, StdRng};

/// Builds a serve-protocol request script line by line.
#[derive(Debug, Default, Clone)]
pub struct ScriptBuilder {
    script: String,
    next_id: u64,
}

fn push_coords(line: &mut String, q: &[f64]) {
    line.push('[');
    for (i, c) in q.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        if c.is_nan() {
            line.push_str("NaN");
        } else if *c == f64::INFINITY {
            line.push_str("Infinity");
        } else if *c == f64::NEG_INFINITY {
            line.push_str("-Infinity");
        } else {
            let _ = write!(line, "{c}");
        }
    }
    line.push(']');
}

impl ScriptBuilder {
    /// An empty script; ids are handed out from 1.
    pub fn new() -> Self {
        ScriptBuilder {
            script: String::new(),
            next_id: 1,
        }
    }

    fn query(&mut self, op: &str, key: &str, param: f64, q: &[f64], deadline_ms: Option<f64>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let _ = write!(self.script, "{{\"id\":{id},\"op\":\"{op}\",\"{key}\":{param},\"q\":");
        push_coords(&mut self.script, q);
        if let Some(ms) = deadline_ms {
            let _ = write!(self.script, ",\"deadline_ms\":{ms}");
        }
        self.script.push_str("}\n");
        id
    }

    /// Appends a TKAQ request (`aggregate >= tau`?), returning its id.
    pub fn tkaq(&mut self, tau: f64, q: &[f64]) -> u64 {
        self.query("tkaq", "tau", tau, q, None)
    }

    /// Appends an eKAQ request (relative error `eps`), returning its id.
    pub fn ekaq(&mut self, eps: f64, q: &[f64]) -> u64 {
        self.query("ekaq", "eps", eps, q, None)
    }

    /// Appends a Within request (absolute width `tol`), returning its id.
    pub fn within(&mut self, tol: f64, q: &[f64]) -> u64 {
        self.query("within", "tol", tol, q, None)
    }

    /// Appends a TKAQ request carrying a `deadline_ms`, returning its id.
    /// A deadline of `0.0` is the deterministic way to force truncation:
    /// the remaining budget saturates to zero no matter how long the
    /// request waited in the queue.
    pub fn tkaq_deadline(&mut self, tau: f64, q: &[f64], deadline_ms: f64) -> u64 {
        self.query("tkaq", "tau", tau, q, Some(deadline_ms))
    }

    /// Appends an eKAQ request carrying a `deadline_ms`, returning its id.
    pub fn ekaq_deadline(&mut self, eps: f64, q: &[f64], deadline_ms: f64) -> u64 {
        self.query("ekaq", "eps", eps, q, Some(deadline_ms))
    }

    /// Appends `count` eKAQ requests with coordinates drawn uniformly
    /// from `range` per dimension — a deterministic load burst. Returns
    /// the ids in script order.
    pub fn ekaq_burst(
        &mut self,
        count: usize,
        dims: usize,
        eps: f64,
        range: std::ops::Range<f64>,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        (0..count)
            .map(|_| {
                let q: Vec<f64> = (0..dims)
                    .map(|_| rng.random_range(range.clone()))
                    .collect();
                self.ekaq(eps, &q)
            })
            .collect()
    }

    /// Appends a `flush` control line (dispatch pending requests now).
    pub fn flush(&mut self) -> &mut Self {
        self.script.push_str("{\"op\":\"flush\"}\n");
        self
    }

    /// Appends a `stats` request, returning its id.
    pub fn stats(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let _ = writeln!(self.script, "{{\"id\":{id},\"op\":\"stats\"}}");
        id
    }

    /// Appends a `shutdown` request, returning its id.
    pub fn shutdown(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let _ = writeln!(self.script, "{{\"id\":{id},\"op\":\"shutdown\"}}");
        id
    }

    /// Appends a raw line verbatim (plus newline) — for protocol-error
    /// and comment/blank-line cases the typed builders refuse to write.
    pub fn raw(&mut self, line: &str) -> &mut Self {
        self.script.push_str(line);
        self.script.push('\n');
        self
    }

    /// The id the next request will get.
    pub fn peek_id(&self) -> u64 {
        self.next_id
    }

    /// The assembled script.
    pub fn build(&self) -> String {
        self.script.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn script_lines_are_deterministic_and_id_ordered() {
        let mut a = ScriptBuilder::new();
        let id1 = a.tkaq(0.25, &[1.0, 2.0]);
        let id2 = a.ekaq(0.1, &[f64::NAN, 0.5]);
        a.flush();
        let id3 = a.shutdown();
        assert_eq!((id1, id2, id3), (1, 2, 3));
        let script = a.build();
        assert_eq!(
            script,
            "{\"id\":1,\"op\":\"tkaq\",\"tau\":0.25,\"q\":[1,2]}\n\
             {\"id\":2,\"op\":\"ekaq\",\"eps\":0.1,\"q\":[NaN,0.5]}\n\
             {\"op\":\"flush\"}\n\
             {\"id\":3,\"op\":\"shutdown\"}\n"
        );

        let mut b = ScriptBuilder::new();
        let mut rng = StdRng::seed_from_u64(7);
        let ids = b.ekaq_burst(4, 2, 0.2, -1.0..1.0, &mut rng);
        assert_eq!(ids, vec![1, 2, 3, 4]);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut c = ScriptBuilder::new();
        c.ekaq_burst(4, 2, 0.2, -1.0..1.0, &mut rng2);
        assert_eq!(b.build(), c.build());
    }
}
