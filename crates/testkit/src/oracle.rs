//! Brute-force reference implementations ("oracles") and interval checks.
//!
//! The paper's soundness claims (Sec. 4, Lemmas 3–5) all have the shape
//! "the fast path returns exactly what the O(n·d) loop returns" or "the
//! cheap bound brackets the exact value". These oracles *are* those
//! O(n·d) loops, written with no cleverness at all, so every fast-path
//! test in the workspace can compare against an implementation too simple
//! to be wrong. They are generic over plain slices — this crate knows
//! nothing about `karl-geom` point sets; callers pass row iterators.

/// Exact weighted kernel aggregate `Σᵢ wᵢ · k(q, xᵢ)` by direct summation.
///
/// `points` yields one `d`-dimensional row per weight; `kernel` is any
/// closure `k(q, x)`. Panics if the weight count disagrees with the row
/// count.
pub fn exact_sum<'a, I, K>(points: I, weights: &[f64], q: &[f64], kernel: K) -> f64
where
    I: IntoIterator<Item = &'a [f64]>,
    K: Fn(&[f64], &[f64]) -> f64,
{
    let mut total = 0.0;
    let mut rows = 0;
    for (i, p) in points.into_iter().enumerate() {
        total += weights[i] * kernel(q, p);
        rows += 1;
    }
    assert_eq!(rows, weights.len(), "weight count does not match row count");
    total
}

/// Largest absolute discrepancy `max_q |Σ wᵢ·k(q,aᵢ) − Σ vⱼ·k(q,bⱼ)|` over a
/// probe set, by two direct summations per probe. This is the measured
/// counterpart of a coreset's analytic error certificate: a certified
/// `eps_c · Σ|w|` margin must upper-bound this value for *any* probe set,
/// regardless of how the coreset was constructed.
///
/// `a` / `b` are `(rows, weights)` pairs of row-major flat buffers with
/// `dims` coordinates per row; `probes` is a flat buffer of query points.
pub fn max_probe_discrepancy<K>(
    a: (&[f64], &[f64]),
    b: (&[f64], &[f64]),
    probes: &[f64],
    dims: usize,
    kernel: K,
) -> f64
where
    K: Fn(&[f64], &[f64]) -> f64,
{
    assert!(dims > 0, "dims must be positive");
    assert_eq!(a.0.len(), a.1.len() * dims, "side A rows/weights mismatch");
    assert_eq!(b.0.len(), b.1.len() * dims, "side B rows/weights mismatch");
    assert_eq!(probes.len() % dims, 0, "probe buffer not a multiple of dims");
    let mut worst = 0.0f64;
    for q in probes.chunks_exact(dims) {
        let sa = exact_sum(a.0.chunks_exact(dims), a.1, q, &kernel);
        let sb = exact_sum(b.0.chunks_exact(dims), b.1, q, &kernel);
        worst = worst.max((sa - sb).abs());
    }
    worst
}

/// Squared Euclidean distance by the textbook loop.
pub fn dist2_naive(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Exact k-nearest-neighbours by scanning every point: returns up to `k`
/// `(index, squared_distance)` pairs sorted by ascending distance, ties
/// broken by index (fully deterministic).
pub fn naive_knn<'a, I>(points: I, q: &[f64], k: usize) -> Vec<(usize, f64)>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut all: Vec<(usize, f64)> = points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i, dist2_naive(q, p)))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// A closed interval `[lo, hi]`, the currency of bound checking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Builds `[lo, hi]`; panics if `lo > hi` or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval endpoint");
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// Interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies inside, within an absolute slack of `tol` per side.
    pub fn contains(&self, x: f64, tol: f64) -> bool {
        self.lo - tol <= x && x <= self.hi + tol
    }

    /// Whether `self` lies inside `other` (i.e. is at least as tight),
    /// within an absolute slack of `tol` per side.
    pub fn within(&self, other: &Interval, tol: f64) -> bool {
        other.lo - tol <= self.lo && self.hi <= other.hi + tol
    }

    /// Minkowski sum `[a.lo + b.lo, a.hi + b.hi]`.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Scales by a (possibly negative) constant, flipping endpoints as needed.
    pub fn scale(&self, c: f64) -> Interval {
        if c >= 0.0 {
            Interval::new(c * self.lo, c * self.hi)
        } else {
            Interval::new(c * self.hi, c * self.lo)
        }
    }
}

/// Relative tolerance scaled by the magnitude of the exact value:
/// `tol · (1 + |exact|)`, the convention used throughout the workspace.
pub fn rel_tol(exact: f64, tol: f64) -> f64 {
    tol * (1.0 + exact.abs())
}

/// Checks the soundness contract `lb ≤ exact ≤ ub` with relative slack.
/// Returns a diagnostic message on violation, for `prop_assert!`-style use.
pub fn check_bracket(lb: f64, exact: f64, ub: f64, tol: f64) -> Result<(), String> {
    let slack = rel_tol(exact, tol);
    if lb > exact + slack {
        return Err(format!("lower bound {lb} exceeds exact value {exact} (slack {slack})"));
    }
    if ub < exact - slack {
        return Err(format!("upper bound {ub} below exact value {exact} (slack {slack})"));
    }
    Ok(())
}

/// Checks the tightness contract of Lemma 3: the `tight` interval must lie
/// inside the `loose` one (KARL's bounds never worse than SOTA's), with
/// relative slack scaled by the loose interval's magnitude.
pub fn check_tighter(tight: Interval, loose: Interval, tol: f64) -> Result<(), String> {
    let slack = tol * (1.0 + loose.lo.abs().max(loose.hi.abs()));
    if tight.within(&loose, slack) {
        Ok(())
    } else {
        Err(format!("interval {tight:?} is not within {loose:?} (slack {slack})"))
    }
}
