//! Minimal property-based testing: generation, shrinking, seeded replay.
//!
//! The [`props!`] macro is the porting target for the workspace's former
//! `proptest!` blocks:
//!
//! ```
//! karl_testkit::props! {
//!     #[test]
//!     fn addition_commutes(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
//!         karl_testkit::prop_assert!((a + b - (b + a)).abs() == 0.0);
//!     }
//! }
//! ```
//!
//! Each property runs a fixed number of generated cases (default 64,
//! `KARL_TEST_CASES` overrides). The base seed is a fixed constant mixed
//! with the property's name, so every test owns a deterministic stream and
//! two executions are bit-identical. On failure the harness greedily
//! shrinks the counterexample (halving numbers toward their lower bound,
//! dropping vector elements) and panics with the shrunk input plus the
//! `KARL_TEST_SEED=<seed>` incantation that replays the exact run.

// The doctest above deliberately shows `#[test]` inside `props!` — that
// is the macro's real call syntax, not a mistakenly-inert test.
#![allow(clippy::test_attr_in_doctest)]

use crate::rng::{bounded_u64, RngCore, SampleRange, SeedableRng, StdRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fixed base seed for all property streams (overridden by `KARL_TEST_SEED`).
pub const DEFAULT_BASE_SEED: u64 = 0x4B41_524C_5445_5354; // "KARLTEST"

/// Default number of generated cases per property (`KARL_TEST_CASES` overrides).
pub const DEFAULT_CASES: u32 = 64;

/// Upper bound on accepted shrink steps, to keep failing runs fast.
const MAX_SHRINK_STEPS: u32 = 512;

/// A source of random values of one type, plus candidate simplifications
/// used to shrink a failing input.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Returns strictly-simpler candidate replacements for `value` (may be
    /// empty). Candidates must stay inside the strategy's domain.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.clone().sample(rng)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64(*value, self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.clone().sample(rng)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64(*value, *self.start())
    }
}

/// Candidates moving `v` toward `lo`: the bound itself, the midpoint, and
/// the integer truncation (rounder numbers make failures readable).
fn shrink_f64(v: f64, lo: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if v != lo {
        out.push(lo);
        let mid = lo + (v - lo) / 2.0;
        if mid != v && mid != lo {
            out.push(mid);
        }
        let trunc = v.trunc();
        if trunc != v && trunc > lo {
            out.push(trunc);
        }
    }
    out
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample(rng)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (v, lo) = (*value, self.start);
                let mut out = Vec::new();
                if v != lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != v && mid != lo {
                        out.push(mid);
                    }
                    if v - 1 != lo && v - 1 != mid {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )+};
}

int_strategy!(usize, u64, u32, i64, i32);

/// Strategy for a fair boolean; `true` shrinks to `false`.
#[derive(Clone, Copy, Debug)]
pub struct Bools;

/// Returns the boolean strategy (the port of `proptest::bool::ANY`).
pub fn bools() -> Bools {
    Bools
}

impl Strategy for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() >> 63 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Inclusive bounds on a generated vector's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy producing `Vec<E::Value>` (the port of `prop::collection::vec`).
#[derive(Clone, Debug)]
pub struct VecStrategy<E> {
    elem: E,
    len: SizeRange,
}

/// Builds a vector strategy: `len` accepts a fixed `usize`, `a..b`, or `a..=b`.
pub fn vec_of<E: Strategy>(elem: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy { elem, len: len.into() }
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<E::Value> {
        let span = (self.len.max - self.len.min) as u64;
        let n = self.len.min + if span == 0 { 0 } else { bounded_u64(rng, span + 1) as usize };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<E::Value>) -> Vec<Vec<E::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: dropping elements simplifies fastest.
        if value.len() > self.len.min {
            for i in 0..value.len() {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        for (i, elem) in value.iter().enumerate() {
            for candidate in self.elem.shrink(elem) {
                let mut simpler = value.clone();
                simpler[i] = candidate;
                out.push(simpler);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+),)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut simpler = value.clone();
                        simpler.$idx = candidate;
                        out.push(simpler);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
}

/// The outcome of one case execution.
enum CaseResult {
    Pass,
    Fail(String),
}

fn run_case<V, F: Fn(V)>(test: &F, value: V) -> CaseResult {
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(()) => CaseResult::Pass,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            CaseResult::Fail(msg)
        }
    }
}

/// Restores the previous panic hook when dropped, even on unwind.
struct HookGuard;

impl HookGuard {
    fn silence() -> Self {
        // Shrinking re-runs the failing body many times; the default hook
        // would spam a backtrace per attempt. The message is captured from
        // the payload instead and reported once at the end.
        std::panic::set_hook(Box::new(|_| {}));
        HookGuard
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

/// Per-test seed: the base seed (env override or default) mixed with the
/// property name via FNV-1a, so each property owns an independent stream.
fn effective_seeds(name: &str) -> (u64, u64) {
    let base = match std::env::var("KARL_TEST_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("KARL_TEST_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_BASE_SEED,
    };
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (base, base ^ h)
}

fn case_count() -> u32 {
    match std::env::var("KARL_TEST_CASES") {
        Ok(s) => s
            .trim()
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("KARL_TEST_CASES must be a u32, got {s:?}")),
        Err(_) => DEFAULT_CASES,
    }
}

/// Outcome of [`run_property_raw`]: the shrunk counterexample, if any.
pub struct Failure<V> {
    /// The first generated input that failed.
    pub original: V,
    /// The simplest failing input the shrinker reached.
    pub shrunk: V,
    /// Panic message from the shrunk input's execution.
    pub message: String,
    /// Index of the failing case within the run.
    pub case: u32,
    /// Base seed that replays the run.
    pub base_seed: u64,
    /// Number of accepted shrink steps.
    pub shrink_steps: u32,
}

/// Runs `cases` generated inputs of `strat` through `test`, shrinking the
/// first failure. Library entry point — the [`props!`] macro and the
/// harness's own meta-tests build on this.
pub fn run_property_raw<S: Strategy, F: Fn(S::Value)>(
    name: &str,
    strat: &S,
    cases: u32,
    test: F,
) -> Result<(), Failure<S::Value>> {
    let (base_seed, stream_seed) = effective_seeds(name);
    let mut rng = StdRng::seed_from_u64(stream_seed);
    let _guard = HookGuard::silence();
    for case in 0..cases {
        let value = strat.generate(&mut rng);
        let msg = match run_case(&test, value.clone()) {
            CaseResult::Pass => continue,
            CaseResult::Fail(msg) => msg,
        };
        // Greedy shrink: take the first simpler candidate that still fails.
        let original = value.clone();
        let mut best = value;
        let mut best_msg = msg;
        let mut steps = 0;
        'outer: while steps < MAX_SHRINK_STEPS {
            for candidate in strat.shrink(&best) {
                if let CaseResult::Fail(m) = run_case(&test, candidate.clone()) {
                    best = candidate;
                    best_msg = m;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        return Err(Failure {
            original,
            shrunk: best,
            message: best_msg,
            case,
            base_seed,
            shrink_steps: steps,
        });
    }
    Ok(())
}

/// Macro-facing wrapper: runs the property and panics with a replayable
/// report on failure.
pub fn run_property<S: Strategy, F: Fn(S::Value)>(name: &str, strat: S, test: F) {
    if let Err(fail) = run_property_raw(name, &strat, case_count(), test) {
        panic!(
            "property {name} failed (case {case} of the run)\n\
             shrunk input ({steps} shrink steps): {shrunk:?}\n\
             original input: {orig:?}\n\
             assertion: {msg}\n\
             replay with: KARL_TEST_SEED={seed} cargo test {name}",
            name = name,
            case = fail.case,
            steps = fail.shrink_steps,
            shrunk = fail.shrunk,
            orig = fail.original,
            msg = fail.message,
            seed = fail.base_seed,
        );
    }
}

/// Declares property tests: `fn name(binding in strategy, ...) { body }`.
///
/// Each function becomes a `#[test]` (attributes written on the function
/// are preserved) whose bindings are generated from the given strategies.
/// Use [`prop_assert!`]/[`prop_assert_eq!`] (or plain `assert!`) in the body.
#[macro_export]
macro_rules! props {
    ($( $(#[$attr:meta])* fn $name:ident( $($pat:ident in $strat:expr),+ $(,)? ) $body:block )+) => {$(
        $(#[$attr])*
        fn $name() {
            $crate::props::run_property(
                stringify!($name),
                ($($strat,)+),
                |($($pat,)+)| { $body },
            );
        }
    )+};
}

/// Asserts a property-body condition (API-compatible with proptest's).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality in a property body (API-compatible with proptest's).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
