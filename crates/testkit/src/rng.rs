//! Deterministic, dependency-free random numbers.
//!
//! [`StdRng`] is a xoshiro256++ generator whose 256-bit state is seeded by
//! running SplitMix64 over a single `u64` — the construction recommended by
//! the xoshiro authors. The trait surface ([`Rng`], [`SeedableRng`],
//! [`seq::SliceRandom`]) mirrors the `rand` 0.9 call sites this module
//! replaced, so test code reads identically; only the import path changed.
//!
//! Reference outputs for both SplitMix64 and the seeded xoshiro256++ core
//! are pinned in this module's tests, so any accidental change to the
//! stream is caught immediately (every seeded test in the workspace keys
//! off these bits).

use std::ops::{Range, RangeInclusive};

/// Golden-ratio increment of the SplitMix64 state.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace-standard deterministic generator: xoshiro256++.
///
/// Not cryptographic — it is a fast, high-quality statistical generator
/// whose whole value here is bit-for-bit reproducibility from a `u64` seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// Minimal generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

/// Construction from a single `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Types that can be drawn uniformly from a generator's raw bits.
pub trait FromRandom {
    /// Draws one value from `rng`.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for usize {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform integer in `[0, n)` by rejection sampling (no modulo bias).
#[inline]
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Largest multiple of n that fits in a u64; reject above it.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Range types a uniform value can be drawn from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let u = f64::from_random(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the (measure-zero, but float-rounding-real) upper edge.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {:?}", self);
        // 53-bit grid over [lo, hi]; both endpoints reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {:?}", self);
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )+};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Convenience methods over any [`RngCore`] — the `rand::Rng` work-alike.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0,1)`, full-width
    /// integers, a fair `bool`).
    #[inline]
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::from_random(self) < p
    }

    /// Draws a standard-normal (mean 0, variance 1) sample via Box–Muller.
    #[inline]
    fn random_normal(&mut self) -> f64
    where
        Self: Sized,
    {
        let u1 = f64::from_random(self).max(1e-300);
        let u2 = f64::from_random(self);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Slice shuffling, mirroring `rand::seq`.

    use super::{bounded_u64, RngCore};

    /// Shuffling operations on slices.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// Uniform Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles exactly `amount` uniformly chosen elements into the
        /// front of the slice; returns `(front, rest)`. `amount` is clamped
        /// to the slice length.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let k = amount.min(self.len());
            for i in 0..k {
                let j = i + bounded_u64(rng, (self.len() - i) as u64) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(k)
        }
    }
}

/// Namespace alias matching `rand::rngs` so ported imports stay familiar.
pub mod rngs {
    pub use super::StdRng;
}
