//! A wall-clock micro-benchmark timer with a Criterion-shaped API.
//!
//! The 16 bench targets under `crates/bench/benches/` were written against
//! Criterion; this module keeps their source shape (`Criterion`,
//! `benchmark_group`, `bench_function`, `b.iter(..)`, `black_box`) while
//! replacing the statistics engine with a plain median-of-samples timer,
//! so the suite builds with zero registry dependencies. It reports
//! median/min/max nanoseconds per iteration on stdout. It does *no*
//! outlier analysis — for paper-grade numbers use the experiment binaries
//! (`cargo run -p karl-bench --bin exp_*`).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (API work-alike of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(700),
            filter: None,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Reads CLI arguments: the first non-flag argument becomes a substring
    /// filter on benchmark ids; harness flags (`--bench`, `--exact`, …) are
    /// ignored for compatibility with `cargo bench` invocation.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--sample-size" {
                if let Some(v) = args.next() {
                    self.sample_size = v.parse().expect("--sample-size takes a number");
                }
            } else if !a.starts_with('-') && self.filter.is_none() {
                self.filter = Some(a);
            }
        }
        self
    }

    /// Starts a named group; ids become `group/function`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, prefix: name.into(), sample_size: None }
    }

    /// Times one function under a bare id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let n = self.sample_size;
        self.run_one(id, n, f);
        self
    }

    /// Prints a closing line. (Criterion compatibility; statistics were
    /// already printed per benchmark.)
    pub fn final_summary(self) {
        eprintln!("karl-testkit bench: {} benchmark(s) run", self.ran);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up doubles as calibration: find an iteration count whose
        // batch runtime is long enough to swamp timer quantisation.
        let mut iters: u64 = 1;
        let warm_deadline = Instant::now() + self.warm_up;
        let per_iter = loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            let per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            if Instant::now() >= warm_deadline {
                break per_iter;
            }
            iters = iters.saturating_mul(2).min(1 << 30);
        };
        let per_sample = self.measurement.max(Duration::from_millis(1)) / sample_size as u32;
        let batch = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
        let mut samples: Vec<f64> = (0..sample_size)
            .map(|_| {
                let mut b = Bencher { iters: batch, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let (min, max) = (samples[0], samples[samples.len() - 1]);
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        self.ran += 1;
    }
}

/// A named group of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Times one function under `prefix/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, id.as_ref());
        let n = self.sample_size.unwrap_or(self.c.sample_size);
        self.c.run_one(&full, n, f);
        self
    }

    /// Ends the group (Criterion compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the workload a set number of times.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`, keeping results opaque to
    /// the optimiser.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}
