//! # karl-kde — kernel density estimation substrate
//!
//! The paper's Type I workload: every point carries the identical positive
//! weight `1/n` and the Gaussian smoothing parameter `γ` comes from Scott's
//! rule (Section V-A, following Gan & Bailis). A [`Kde`] bundles the point
//! set with those parameters and hands them to a `karl_core` evaluator.
//!
//! ```
//! use karl_core::BoundMethod;
//! use karl_geom::PointSet;
//! use karl_kde::Kde;
//!
//! let pts = PointSet::from_rows(&[
//!     vec![0.0, 0.0], vec![0.2, 0.1], vec![0.1, -0.1], vec![4.0, 4.0],
//! ]);
//! let kde = Kde::fit(pts);
//! let eval = kde.evaluator(BoundMethod::Karl, 2);
//! // Density near the cluster is higher than at the straggler.
//! let dense = eval.ekaq(&[0.1, 0.0], 0.05);
//! let sparse = eval.ekaq(&[4.0, 4.0], 0.05);
//! assert!(dense > sparse * 0.5);
//! ```

pub mod regression;

pub use regression::{KernelRegression, RegressionEstimate};

use karl_core::{aggregate_exact, BoundMethod, Evaluator, KarlError, KdEvaluator, Kernel};
use karl_geom::PointSet;

/// Scott's-rule bandwidth `h = n^{−1/(d+4)} · σ̄`, with `σ̄` the average
/// per-dimension standard deviation of the data.
///
/// # Panics
/// Panics if `points` is empty.
pub fn scotts_bandwidth(points: &PointSet) -> f64 {
    assert!(!points.is_empty(), "bandwidth of an empty set");
    let n = points.len() as f64;
    let d = points.dims() as f64;
    let sigma: f64 = points.std_dev().iter().sum::<f64>() / d;
    // Degenerate (all-identical) data: fall back to a unit bandwidth so the
    // kernel stays well-defined.
    let sigma = if sigma > 0.0 { sigma } else { 1.0 };
    n.powf(-1.0 / (d + 4.0)) * sigma
}

/// The Gaussian smoothing parameter `γ = 1/(2h²)` induced by Scott's rule.
pub fn scotts_gamma(points: &PointSet) -> f64 {
    let h = scotts_bandwidth(points);
    1.0 / (2.0 * h * h)
}

/// A kernel density estimator over a point set: the Type I kernel
/// aggregation workload `F_P(q) = (1/n)·Σ exp(−γ·dist²)`.
#[derive(Debug, Clone)]
pub struct Kde {
    points: PointSet,
    gamma: f64,
    weight: f64,
}

impl Kde {
    /// Fits a KDE with Scott's-rule `γ` and uniform weights `1/n`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn fit(points: PointSet) -> Self {
        Self::try_fit(points).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating [`fit`](Self::fit): rejects an empty or non-finite point
    /// set with a typed [`KarlError`] instead of panicking.
    pub fn try_fit(points: PointSet) -> Result<Self, KarlError> {
        if points.is_empty() {
            return Err(KarlError::EmptyPoints);
        }
        points.check_finite()?;
        let gamma = scotts_gamma(&points);
        let weight = 1.0 / points.len() as f64;
        Ok(Self {
            points,
            gamma,
            weight,
        })
    }

    /// Fits a KDE with an explicit `γ`.
    ///
    /// # Panics
    /// Panics if `points` is empty or `gamma ≤ 0`.
    pub fn with_gamma(points: PointSet, gamma: f64) -> Self {
        Self::try_with_gamma(points, gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating [`with_gamma`](Self::with_gamma): `EmptyPoints`,
    /// `NonFinitePoint` or `InvalidGamma` instead of a panic.
    pub fn try_with_gamma(points: PointSet, gamma: f64) -> Result<Self, KarlError> {
        if points.is_empty() {
            return Err(KarlError::EmptyPoints);
        }
        points.check_finite()?;
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(KarlError::InvalidGamma { value: gamma });
        }
        let weight = 1.0 / points.len() as f64;
        Ok(Self {
            points,
            gamma,
            weight,
        })
    }

    /// The underlying points.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// The smoothing parameter `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The common weight `w = 1/n` (Type I weighting).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The Gaussian kernel of this estimator.
    pub fn kernel(&self) -> Kernel {
        Kernel::gaussian(self.gamma)
    }

    /// Exact density at `q` (sequential scan; ground truth).
    pub fn density_exact(&self, q: &[f64]) -> f64 {
        let w = vec![self.weight; self.points.len()];
        aggregate_exact(&self.kernel(), &self.points, &w, q)
    }

    /// Builds a kd-tree KARL/SOTA evaluator for this estimator.
    pub fn evaluator(&self, method: BoundMethod, leaf_capacity: usize) -> KdEvaluator {
        let w = vec![self.weight; self.points.len()];
        Evaluator::build(&self.points, &w, self.kernel(), method, leaf_capacity)
    }

    /// The mean density `μ` over a set of query points — the paper's
    /// default TKAQ threshold `τ = μ` (Section V-B), computed with an
    /// `ε`-bounded evaluator for speed.
    pub fn mean_density(&self, queries: &PointSet, eps: f64) -> f64 {
        assert!(!queries.is_empty(), "empty query set");
        let eval = self.evaluator(BoundMethod::Karl, 64);
        let sum: f64 = queries.iter().map(|q| eval.ekaq(q, eps)).sum();
        sum / queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    fn blob(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            d,
            (0..n * d)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn scotts_rule_shrinks_with_n() {
        let small = blob(50, 3, 1);
        let large = blob(5000, 3, 1);
        assert!(scotts_bandwidth(&large) < scotts_bandwidth(&small));
    }

    #[test]
    fn scotts_rule_degenerate_data() {
        let ps = PointSet::from_rows(&vec![vec![2.0, 2.0]; 10]);
        let h = scotts_bandwidth(&ps);
        assert!(h > 0.0 && h.is_finite());
    }

    #[test]
    fn density_integrates_to_about_weight_scale() {
        // With w = 1/n, density at a data point is within (0, 1].
        let ps = blob(200, 2, 2);
        let kde = Kde::fit(ps.clone());
        let d = kde.density_exact(ps.point(0));
        assert!(d > 0.0 && d <= 1.0 + 1e-12);
    }

    #[test]
    fn density_higher_in_cluster_than_outside() {
        let ps = blob(300, 2, 3);
        let kde = Kde::fit(ps);
        assert!(kde.density_exact(&[0.0, 0.0]) > kde.density_exact(&[10.0, 10.0]));
    }

    #[test]
    fn evaluator_matches_exact_density() {
        let ps = blob(400, 3, 4);
        let kde = Kde::fit(ps.clone());
        let eval = kde.evaluator(BoundMethod::Karl, 16);
        for i in [0, 57, 311] {
            let q = ps.point(i);
            let exact = kde.density_exact(q);
            let est = eval.ekaq(q, 0.1);
            assert!(est >= 0.9 * exact - 1e-12 && est <= 1.1 * exact + 1e-12);
        }
    }

    #[test]
    fn mean_density_is_between_extremes() {
        let ps = blob(200, 2, 5);
        let kde = Kde::fit(ps.clone());
        let queries = ps.select(&(0..50).collect::<Vec<_>>());
        let mu = kde.mean_density(&queries, 0.05);
        let dmin = queries
            .iter()
            .map(|q| kde.density_exact(q))
            .fold(f64::INFINITY, f64::min);
        let dmax = queries
            .iter()
            .map(|q| kde.density_exact(q))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(mu >= dmin * 0.9 && mu <= dmax * 1.1);
    }

    #[test]
    #[should_panic]
    fn with_gamma_rejects_non_positive() {
        Kde::with_gamma(blob(10, 2, 6), 0.0);
    }
}
