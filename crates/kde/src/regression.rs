//! Kernel (Nadaraya–Watson) regression served through KARL bounds — one of
//! the paper's "promising future research directions" (Section VII).
//!
//! The regression estimate at a query point is a *ratio* of two kernel
//! aggregates,
//!
//! ```text
//!           Σᵢ yᵢ·K(q, pᵢ)      numerator: Type III weighting (yᵢ signed)
//! m̂(q) =  ───────────────
//!           Σᵢ  K(q, pᵢ)        denominator: Type I weighting (positive)
//! ```
//!
//! so both aggregates can be bounded by the same branch-and-bound machinery
//! and the ratio enclosed by interval division. [`KernelRegression::predict`]
//! refines both aggregates until the ratio interval is within the caller's
//! tolerance, falling back to the exact value when the trees bottom out.

use karl_core::{BoundMethod, Evaluator, KdEvaluator, Kernel, Query};
use karl_geom::PointSet;

use crate::scotts_gamma;

/// A bounded Nadaraya–Watson estimate: midpoint plus enclosure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionEstimate {
    /// Midpoint of the enclosing interval.
    pub value: f64,
    /// Lower end of the enclosure.
    pub lo: f64,
    /// Upper end of the enclosure.
    pub hi: f64,
}

/// A fitted kernel regressor.
#[derive(Debug, Clone)]
pub struct KernelRegression {
    numerator: KdEvaluator,
    denominator: KdEvaluator,
    gamma: f64,
}

impl KernelRegression {
    /// Fits a regressor on `(points, targets)` with Scott's-rule `γ`.
    ///
    /// # Panics
    /// Panics if `points` is empty, lengths mismatch, or every target is
    /// zero.
    pub fn fit(points: PointSet, targets: &[f64]) -> Self {
        let gamma = scotts_gamma(&points);
        Self::fit_with_gamma(points, targets, gamma)
    }

    /// Fits with an explicit `γ`.
    ///
    /// # Panics
    /// Panics if `points` is empty, lengths mismatch, `gamma ≤ 0`, or every
    /// target is zero.
    pub fn fit_with_gamma(points: PointSet, targets: &[f64], gamma: f64) -> Self {
        assert_eq!(targets.len(), points.len(), "targets/points mismatch");
        assert!(gamma.is_finite() && gamma > 0.0, "gamma must be positive");
        let kernel = Kernel::gaussian(gamma);
        let ones = vec![1.0; points.len()];
        let numerator = Evaluator::build(&points, targets, kernel, BoundMethod::Karl, 32);
        let denominator = Evaluator::build(&points, &ones, kernel, BoundMethod::Karl, 32);
        Self {
            numerator,
            denominator,
            gamma,
        }
    }

    /// The smoothing parameter `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Exact Nadaraya–Watson estimate (full scans; ground truth).
    pub fn predict_exact(&self, q: &[f64]) -> f64 {
        let den = self.denominator.exact(q);
        if den <= 0.0 {
            return 0.0; // no kernel mass anywhere near q
        }
        self.numerator.exact(q) / den
    }

    /// Bounded estimate: refines the two aggregates until the enclosing
    /// ratio interval has half-width ≤ `tol` (or the refinement bottoms
    /// out, in which case the enclosure is exact).
    ///
    /// # Panics
    /// Panics unless `tol > 0`.
    pub fn predict(&self, q: &[f64], tol: f64) -> RegressionEstimate {
        assert!(tol > 0.0, "tol must be positive");
        // First pass: pin the denominator scale with a coarse relative run.
        let den0 = self.denominator.run_query(q, Query::Ekaq { eps: 0.5 }, None);
        let den_scale = den0.lb.max(1e-300);

        // Refine both aggregates with shrinking absolute budgets until the
        // interval quotient is tight enough.
        let mut budget = tol * den_scale;
        for _ in 0..8 {
            let den = self
                .denominator
                .run_query(q, Query::Within { tol: budget }, None);
            let num = self
                .numerator
                .run_query(q, Query::Within { tol: budget }, None);
            if den.lb <= 0.0 {
                // Numerically no mass: refine once more or give up to exact.
                budget *= 0.25;
                continue;
            }
            let corners = [
                num.lb / den.lb,
                num.lb / den.ub,
                num.ub / den.lb,
                num.ub / den.ub,
            ];
            let lo = corners.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = corners.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if hi - lo <= 2.0 * tol {
                return RegressionEstimate {
                    value: 0.5 * (lo + hi),
                    lo,
                    hi,
                };
            }
            budget *= 0.25;
        }
        let exact = self.predict_exact(q);
        RegressionEstimate {
            value: exact,
            lo: exact,
            hi: exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karl_testkit::rng::StdRng;
    use karl_testkit::rng::{Rng, SeedableRng};

    /// y = sin(2πx) + noise on [0, 1].
    fn sine_data(n: usize, seed: u64) -> (PointSet, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            xs.push(x);
            ys.push((std::f64::consts::TAU * x).sin() + rng.random_range(-0.05..0.05));
        }
        (PointSet::new(1, xs), ys)
    }

    #[test]
    fn recovers_the_sine_shape() {
        let (x, y) = sine_data(2_000, 1);
        let reg = KernelRegression::fit_with_gamma(x, &y, 800.0);
        for (q, expect) in [(0.25, 1.0), (0.75, -1.0), (0.5, 0.0)] {
            let got = reg.predict_exact(&[q]);
            assert!(
                (got - expect).abs() < 0.15,
                "m({q}) = {got}, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn bounded_prediction_encloses_exact() {
        let (x, y) = sine_data(1_500, 2);
        let reg = KernelRegression::fit(x.clone(), &y);
        for i in (0..1_500).step_by(173) {
            let q = x.point(i);
            let exact = reg.predict_exact(q);
            for tol in [0.5, 0.05, 0.005] {
                let est = reg.predict(q, tol);
                assert!(
                    est.lo <= exact + 1e-9 && exact <= est.hi + 1e-9,
                    "enclosure [{}, {}] misses exact {}",
                    est.lo,
                    est.hi,
                    exact
                );
                assert!(
                    est.hi - est.lo <= 2.0 * tol + 1e-9,
                    "interval too wide for tol {tol}"
                );
                assert!((est.value - exact).abs() <= tol + 1e-9);
            }
        }
    }

    #[test]
    fn negative_targets_are_fine() {
        let x = PointSet::new(1, vec![0.0, 0.1, 0.2, 0.9, 1.0]);
        let y = vec![-2.0, -2.1, -1.9, 3.0, 3.1];
        let reg = KernelRegression::fit_with_gamma(x, &y, 100.0);
        assert!(reg.predict_exact(&[0.1]) < 0.0);
        assert!(reg.predict_exact(&[0.95]) > 0.0);
        let est = reg.predict(&[0.1], 0.01);
        assert!(est.value < 0.0);
    }

    #[test]
    fn far_query_with_no_mass_is_zero() {
        let x = PointSet::new(1, vec![0.0, 0.1]);
        let y = vec![5.0, 5.0];
        let reg = KernelRegression::fit_with_gamma(x, &y, 50.0);
        // exp(−50·(100)²) underflows to 0 → defined fallback
        assert_eq!(reg.predict_exact(&[100.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_tol_panics() {
        let (x, y) = sine_data(50, 3);
        KernelRegression::fit(x, &y).predict(&[0.5], 0.0);
    }
}
